//! Standard-form solving: presolve, the sparse revised simplex, and the dense
//! two-phase tableau fallback.
//!
//! The pipeline for every solve is
//!
//! ```text
//! presolve → equilibrate → (perturb) → revised simplex → map back
//!                                          ↓ (f64 non-convergence)
//!                                    dense tableau fallback
//! ```
//!
//! [`crate::presolve`] shrinks the system where it can (honest finding: the big
//! Handelman coefficient-matching systems present no singleton/forcing structure and
//! shed nothing, but the many small box LPs the invariant engine solves are often
//! decided entirely in presolve), [`crate::revised`] solves the reduced problem
//! sparsely with warm-start support, and the dense tableau below — the original
//! solver of this crate — remains as the floating-point rescue path for small and
//! medium systems, where its Gauss–Jordan refactorization machinery has survived
//! every degenerate instance the benchmark suite produces.

use std::time::Instant;

use crate::certify::PhaseStats;
use crate::deadline::Deadline;
use crate::presolve::presolve;
use crate::problem::LpStatus;
use crate::revised::solve_revised_capped;
use crate::scalar::{abs as abs_scalar, Scalar};

/// A problem in standard form: minimize `costs · y` subject to `matrix · y = rhs`,
/// `y ≥ 0`, with `rhs ≥ 0` componentwise.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm<S> {
    /// Constraint matrix, one row per equality.
    pub matrix: Vec<Vec<S>>,
    /// Right-hand sides (all non-negative).
    pub rhs: Vec<S>,
    /// Objective coefficients.
    pub costs: Vec<S>,
    /// Column layout of the original model variables (positive column, optional negative
    /// column for free variables). Carried along for diagnostics.
    pub model_columns: Vec<(usize, Option<usize>)>,
}

/// Raw solver output over standard-form columns.
#[derive(Debug, Clone)]
pub(crate) struct RawSolution<S> {
    pub status: LpStatus,
    pub values: Vec<S>,
    /// Basic structural columns at termination, in *original* (pre-presolve)
    /// standard-form indices; the caller turns these into a reusable warm start.
    pub basis: Vec<usize>,
    /// Simplex iterations performed (0 when presolve decided the problem).
    pub iterations: usize,
    /// Rows removed by presolve.
    pub presolve_rows_removed: usize,
    /// Columns removed by presolve.
    pub presolve_cols_removed: usize,
    /// `true` when the deadline expired during phase 2 and the reported optimum is
    /// the last feasible (sound but possibly loose) iterate.
    pub truncated: bool,
    /// The terminal dual `y = c_B B⁻¹` of a *proven* exact optimum, over the rows
    /// of the form the simplex actually pivoted on (post-presolve). Only the exact
    /// backend fills this in (the `f64` dual certifies nothing), and only for
    /// non-truncated `Optimal`; the row-generation driver prices excluded columns
    /// against it without a separate Markowitz re-derivation.
    pub dual: Option<Vec<S>>,
    /// An exact lower bound `y·b` on the true optimum, recovered from a
    /// dual-feasible basis the certifier rejected on primal grounds (weak duality).
    /// Populated only for truncated (anytime) answers, whose objective is an upper
    /// bound: together they bracket the unproven optimum.
    pub dual_bound: Option<S>,
    /// Per-phase effort accounting (populated by the float-first driver; the plain
    /// single-backend paths leave it at its defaults).
    pub phases: PhaseStats,
}

impl<S> RawSolution<S> {
    pub(crate) fn bare(status: LpStatus) -> RawSolution<S> {
        RawSolution {
            status,
            values: Vec::new(),
            basis: Vec::new(),
            iterations: 0,
            presolve_rows_removed: 0,
            presolve_cols_removed: 0,
            truncated: false,
            dual: None,
            dual_bound: None,
            phases: PhaseStats::default(),
        }
    }
}

/// Internal simplex state: the tableau `B⁻¹A | B⁻¹b` plus the current basis.
struct Tableau<S> {
    rows: Vec<Vec<S>>,
    rhs: Vec<S>,
    basis: Vec<usize>,
    num_cols: usize,
}

impl<S: Scalar> Tableau<S> {
    /// Rebuilds the tableau `B⁻¹[A | b]` for the *current basis* directly from the
    /// original standard-form data, clearing all accumulated floating-point round-off.
    ///
    /// Long dense pivot chains drift: after tens of thousands of pivots the tableau can
    /// be wrong enough that phase 1 stalls at a positive objective on a feasible system
    /// (observed on the Fig. 1 `join` synthesis LP, which stalled at exactly 1.0 while
    /// the exact backend proves the system feasible). Re-deriving the tableau from the
    /// untouched input is a dense Gauss–Jordan elimination pivoting on the basic columns
    /// — `O(rows² · cols)`, so it is only invoked at verdict boundaries and at a coarse
    /// period, not per iteration.
    ///
    /// Returns `false` (leaving the tableau untouched) if the basis matrix is
    /// numerically singular, in which case the caller must not trust the state either
    /// way and should report non-convergence.
    fn refactor(&mut self, original: &[Vec<S>], original_rhs: &[S]) -> bool {
        let n = self.rows.len();
        let mut rows: Vec<Vec<S>> = original.to_vec();
        let mut rhs: Vec<S> = original_rhs.to_vec();
        let mut pivoted = vec![false; n];
        for _ in 0..n {
            // Greedy pivot order: the unprocessed row whose basic column currently has
            // the largest magnitude (partial pivoting over the fixed row/column pairing).
            let mut best: Option<usize> = None;
            for row in 0..n {
                if pivoted[row] {
                    continue;
                }
                let magnitude = abs_scalar(&rows[row][self.basis[row]]);
                let better = match best {
                    None => true,
                    Some(b) => abs_scalar(&rows[b][self.basis[b]]).lt(&magnitude),
                };
                if better {
                    best = Some(row);
                }
            }
            let Some(row) = best else { return false };
            let col = self.basis[row];
            let pivot_value = rows[row][col].clone();
            if pivot_value.is_zero() {
                return false;
            }
            for cell in &mut rows[row] {
                *cell = cell.div(&pivot_value);
            }
            rhs[row] = rhs[row].div(&pivot_value);
            let pivot_cells = std::mem::take(&mut rows[row]);
            let pivot_rhs = rhs[row].clone();
            for other in 0..n {
                if other == row {
                    continue;
                }
                let factor = rows[other][col].clone();
                if factor.is_exactly_zero() {
                    continue;
                }
                for (cell, p) in rows[other].iter_mut().zip(&pivot_cells) {
                    if !p.is_exactly_zero() {
                        *cell = cell.sub(&factor.mul(p));
                    }
                }
                rhs[other] = rhs[other].sub(&factor.mul(&pivot_rhs));
            }
            rows[row] = pivot_cells;
            pivoted[row] = true;
        }
        self.rows = rows;
        self.rhs = rhs;
        true
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let pivot_value = self.rows[pivot_row][pivot_col].clone();
        debug_assert!(!pivot_value.is_zero());
        // Normalize the pivot row.
        for cell in &mut self.rows[pivot_row] {
            *cell = cell.div(&pivot_value);
        }
        self.rhs[pivot_row] = self.rhs[pivot_row].div(&pivot_value);
        // Eliminate the pivot column from all other rows. The pivot row is taken out of
        // the matrix so every update runs over two independent slices (row-major, no
        // per-element bounds checks); zero entries of the pivot row are skipped, which
        // saves most of the work on the sparse tableaus the Handelman encoding produces.
        let pivot_cells = std::mem::take(&mut self.rows[pivot_row]);
        let pivot_rhs = self.rhs[pivot_row].clone();
        for (row, (cells, rhs)) in self.rows.iter_mut().zip(self.rhs.iter_mut()).enumerate() {
            if row == pivot_row {
                continue;
            }
            let factor = cells[pivot_col].clone();
            if factor.is_zero() {
                continue;
            }
            for (cell, p) in cells.iter_mut().zip(&pivot_cells) {
                if !p.is_exactly_zero() {
                    *cell = cell.sub(&factor.mul(p));
                }
            }
            *rhs = rhs.sub(&factor.mul(&pivot_rhs));
        }
        self.rows[pivot_row] = pivot_cells;
        self.basis[pivot_row] = pivot_col;
    }

    /// Reduced costs `r_j = c_j - c_B · (B⁻¹ A_j)` for all columns, accumulated row by
    /// row so the traversal matches the tableau's memory layout.
    fn reduced_costs(&self, costs: &[S]) -> Vec<S> {
        let mut reduced: Vec<S> = costs[..self.num_cols].to_vec();
        for (row, &basic) in self.basis.iter().enumerate() {
            let bc = &costs[basic];
            if bc.is_zero() {
                continue;
            }
            for (value, cell) in reduced.iter_mut().zip(&self.rows[row]) {
                if !cell.is_exactly_zero() {
                    *value = value.sub(&bc.mul(cell));
                }
            }
        }
        reduced
    }

    fn objective_value(&self, costs: &[S]) -> S {
        let mut value = S::zero();
        for (row, &b) in self.basis.iter().enumerate() {
            value = value.add(&costs[b].mul(&self.rhs[row]));
        }
        value
    }

    /// Runs simplex iterations with the given costs until optimality, unboundedness,
    /// the iteration limit or the deadline. Returns the status.
    ///
    /// Reduced costs are maintained incrementally across pivots (`r' = r − r_e · ρ`
    /// where `ρ` is the post-pivot pivot row), which halves the per-iteration work
    /// compared to recomputing `c_j − c_B · B⁻¹A_j` from scratch. In floating point the
    /// maintained row drifts, so it is refreshed periodically and optimality is only
    /// reported after a confirmation pass over freshly recomputed reduced costs.
    ///
    /// `original` carries the untouched standard-form data (matrix extended with the
    /// artificial columns, and the right-hand side). When present, every floating-point
    /// verdict — optimality, unboundedness — is confirmed on a tableau freshly
    /// [refactored](Tableau::refactor) from it, and the tableau is periodically
    /// refactored mid-run to keep drift from steering pivots astray.
    fn optimize(
        &mut self,
        costs: &[S],
        allowed_cols: usize,
        max_iters: usize,
        deadline: &Deadline,
        original: Option<(&[Vec<S>], &[S])>,
        iterations: &mut usize,
    ) -> LpStatus {
        const REFRESH_EVERY: usize = 16;
        const DEADLINE_EVERY: usize = 64;
        /// Mid-run anti-drift refactorization period (f64 only). Refactoring is
        /// `O(rows²·cols)` — roughly a thousand ordinary pivots — so this keeps its
        /// amortized cost below ~15% while bounding how far the tableau can wander.
        const REFACTOR_EVERY: usize = 8192;
        /// How many verdict-time refactor-and-resume rescues are allowed before the
        /// verdict is accepted as-is (bounds the extra work on genuinely hard cases).
        const MAX_RESCUES: usize = 24;
        let bland_after = max_iters / 2;
        let mut reduced = self.reduced_costs(costs);
        let mut since_refresh = 0usize;
        let mut rescues = 0usize;
        let mut last_rescue_objective: Option<f64> = None;
        let refactor_and_resume =
            |tableau: &mut Self, reduced: &mut Vec<S>, rescues: &mut usize| -> bool {
                if S::IS_EXACT || *rescues >= MAX_RESCUES {
                    return false;
                }
                let Some((matrix, rhs)) = original else { return false };
                *rescues += 1;
                if !tableau.refactor(matrix, rhs) {
                    return false;
                }
                *reduced = tableau.reduced_costs(costs);
                true
            };
        for iteration in 0..max_iters {
            // Exact-backend pivots over blown-up rationals can take seconds each, so
            // the deadline is polled every iteration there; the cheap f64 iterations
            // amortize the clock read over a small batch.
            if (S::IS_EXACT || iteration % DEADLINE_EVERY == 0) && deadline.expired() {
                return LpStatus::TimedOut;
            }
            if !S::IS_EXACT {
                if iteration % REFACTOR_EVERY == REFACTOR_EVERY - 1 {
                    if let Some((matrix, rhs)) = original {
                        if self.refactor(matrix, rhs) {
                            reduced = self.reduced_costs(costs);
                            since_refresh = 0;
                        }
                    }
                } else if since_refresh >= REFRESH_EVERY {
                    reduced = self.reduced_costs(costs);
                    since_refresh = 0;
                }
            }
            let use_bland = S::IS_EXACT || iteration >= bland_after;
            // Entering column: negative reduced cost.
            let entering = if use_bland {
                (0..allowed_cols).find(|&j| reduced[j].is_negative())
            } else {
                // Dantzig: most negative reduced cost.
                let mut best: Option<usize> = None;
                for j in 0..allowed_cols {
                    if reduced[j].is_negative()
                        && best.is_none_or(|b| reduced[j].lt(&reduced[b]))
                    {
                        best = Some(j);
                    }
                }
                best
            };
            let Some(entering) = entering else {
                if !S::IS_EXACT && since_refresh != 0 {
                    // Apparent optimality on drifted data: confirm against fresh values.
                    reduced = self.reduced_costs(costs);
                    since_refresh = 0;
                    if (0..allowed_cols).any(|j| reduced[j].is_negative()) {
                        continue;
                    }
                }
                // Sharper confirmation: rebuild the tableau from the original data and
                // re-price. A stalled phase 1 (apparent optimum above zero on a feasible
                // system) resumes from here with round-off cleared. If a previous
                // rescue already landed on this objective value, further rescues will
                // only re-tread the same degenerate circle — accept the verdict and let
                // the caller's perturbed retry break the tie instead.
                let objective = self.objective_value(costs).to_f64();
                let stalled = last_rescue_objective
                    .is_some_and(|previous| (previous - objective).abs() <= 1e-9);
                last_rescue_objective = Some(objective);
                if !stalled && refactor_and_resume(self, &mut reduced, &mut rescues) {
                    since_refresh = 0;
                    if (0..allowed_cols).any(|j| reduced[j].is_negative()) {
                        continue;
                    }
                }
                // Round-off in long pivot chains can silently break primal feasibility
                // (negative basic values); report non-convergence instead of a bogus
                // optimum so callers fall back to the exact backend.
                if !S::IS_EXACT && self.rhs.iter().any(Scalar::is_negative) {
                    return LpStatus::IterationLimit;
                }
                return LpStatus::Optimal;
            };
            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio: Option<S> = None;
            for row in 0..self.rows.len() {
                let coeff = &self.rows[row][entering];
                if !coeff.is_positive() {
                    continue;
                }
                let ratio = self.rhs[row].div(coeff);
                let better = match &best_ratio {
                    None => true,
                    Some(best) => {
                        ratio.lt(best)
                            || (!best.lt(&ratio)
                                && leaving.is_some_and(|l| self.basis[row] < self.basis[l]))
                    }
                };
                if better {
                    best_ratio = Some(ratio);
                    leaving = Some(row);
                }
            }
            let Some(leaving) = leaving else {
                // An all-non-positive entering column may itself be a drift artifact:
                // confirm unboundedness on a freshly refactored tableau before giving up.
                if refactor_and_resume(self, &mut reduced, &mut rescues) {
                    since_refresh = 0;
                    continue;
                }
                return LpStatus::Unbounded;
            };
            self.pivot(leaving, entering);
            *iterations += 1;
            // Incremental reduced-cost update from the freshly normalized pivot row.
            let scale = reduced[entering].clone();
            if !scale.is_exactly_zero() {
                for (value, cell) in reduced.iter_mut().zip(&self.rows[leaving]) {
                    if !cell.is_exactly_zero() {
                        *value = value.sub(&scale.mul(cell));
                    }
                }
            }
            since_refresh += 1;
        }
        LpStatus::IterationLimit
    }
}

/// Solves a standard-form problem: presolve, then the two-phase revised simplex (with
/// the dense tableau as the floating-point rescue path).
///
/// When `deadline` is set, the iteration loops poll the clock and bail out with
/// [`LpStatus::TimedOut`] once it passes.
///
/// `warm` seeds the initial basis with preferred structural columns (original column
/// indices); columns eliminated by presolve or dependent in the new system are
/// silently dropped, so a stale warm start degrades gracefully to a cold one.
///
/// A floating-point `Infeasible` verdict is re-examined once on a *perturbed* copy of
/// the problem: on heavily degenerate systems (the Handelman encodings are almost
/// entirely coefficient-matching equalities with zero right-hand sides) phase 1 can
/// stall at a positive objective even though the system is feasible — every improving
/// pivot has ratio zero and the tolerance-guided pricing goes in circles. Adding a tiny
/// deterministic positive offset to each right-hand side (the classical lexicographic-
/// perturbation cure) makes the basic values generically non-zero so every pivot makes
/// real progress; the phase-1 acceptance threshold accounts for the offsets. The
/// perturbed retry only runs when the plain solve claims infeasibility — and it reuses
/// the failed solve's final basis as its warm start, so the retry resumes from where
/// the stall happened instead of re-pivoting from scratch.
pub(crate) fn solve_standard_form<S: Scalar>(
    form: &StandardForm<S>,
    deadline: &Deadline,
    warm: Option<&[usize]>,
) -> RawSolution<S> {
    let num_original_cols = form.costs.len();
    // `DCA_LP_NO_PRESOLVE=1` disables the reductions (A/B soundness testing).
    let pre = if std::env::var("DCA_LP_NO_PRESOLVE").is_ok() {
        crate::presolve::identity(form)
    } else {
        presolve(form)
    };
    if let Some(status) = pre.verdict {
        let mut solution = RawSolution::bare(status);
        solution.presolve_rows_removed = pre.rows_removed;
        solution.presolve_cols_removed = pre.cols_removed;
        return solution;
    }
    if pre.form.matrix.is_empty() {
        // Presolve resolved every constraint, which certifies feasibility. Surviving
        // columns are unconstrained: with non-negative costs zero (the `restore`
        // default) is optimal; a surviving negative-cost column (presolve keeps
        // those — see `presolve.rs`) is now a genuine unbounded ray.
        let unbounded = pre.form.costs.iter().any(Scalar::is_negative);
        let mut solution =
            RawSolution::bare(if unbounded { LpStatus::Unbounded } else { LpStatus::Optimal });
        if !unbounded {
            solution.values =
                pre.restore(&vec![S::zero(); pre.kept_cols.len()], num_original_cols);
        }
        solution.presolve_rows_removed = pre.rows_removed;
        solution.presolve_cols_removed = pre.cols_removed;
        return solution;
    }
    let warm_reduced: Option<Vec<usize>> = warm.map(|w| pre.map_cols(w));

    // Large Handelman systems are degenerate enough that the stall is the *expected*
    // failure mode — and the stall itself is what burns the time (thousands of
    // zero-progress pivots before the tolerance gives up). Above the row threshold the
    // perturbation is applied from the start instead of after a failed plain solve.
    let perturb_immediately = !S::IS_EXACT && pre.form.matrix.len() >= PERTURB_ROWS_THRESHOLD;
    let first_perturbation = if perturb_immediately { PERTURBATION } else { 0.0 };
    let mut solution = solve_standard_form_inner(
        &pre.form,
        deadline,
        first_perturbation,
        warm_reduced.as_deref(),
        None,
    );
    if !S::IS_EXACT && !perturb_immediately && solution.status == LpStatus::Infeasible {
        let retry_warm = if solution.basis.is_empty() { warm_reduced } else { Some(solution.basis.clone()) };
        solution = solve_standard_form_inner(
            &pre.form,
            deadline,
            PERTURBATION,
            retry_warm.as_deref(),
            None,
        );
    }

    // Map the reduced solution back to the original column space.
    if solution.status == LpStatus::Optimal {
        solution.values = pre.restore(&solution.values, num_original_cols);
    }
    solution.basis = solution.basis.iter().map(|&col| pre.kept_cols[col]).collect();
    solution.presolve_rows_removed = pre.rows_removed;
    solution.presolve_cols_removed = pre.cols_removed;
    solution
}

/// Magnitude of the anti-degeneracy right-hand-side perturbation (applied to the
/// equilibrated system, whose entries are at most 1 in magnitude).
pub(crate) const PERTURBATION: f64 = 1e-7;

/// Row count above which the perturbation is applied on the first attempt rather than
/// only on the infeasibility retry.
pub(crate) const PERTURB_ROWS_THRESHOLD: usize = 384;

/// The equilibrate → perturb → revised-simplex core shared by the plain driver and
/// the float-first certification driver; `iter_cap` bounds the revised simplex's
/// pivots (used for the capped exact repair rounds).
pub(crate) fn solve_standard_form_inner<S: Scalar>(
    form: &StandardForm<S>,
    deadline: &Deadline,
    perturbation: f64,
    warm: Option<&[usize]>,
    iter_cap: Option<usize>,
) -> RawSolution<S> {
    let num_rows = form.matrix.len();
    let num_structural = form.costs.len();
    let _ = &form.model_columns;

    // Equilibration: scale columns and rows so that tableau entries stay near unit
    // magnitude. This matters for the floating-point backend on problems whose raw
    // coefficients span several orders of magnitude (the degree-3 Handelman products
    // such as (100 - n)^3 span six). Column scaling substitutes y_j = s_j * x_j, so
    // the solution is rescaled at the end; row scaling multiplies an equality by a
    // positive factor and needs no compensation. The column/row passes are iterated
    // (Ruiz-style): one pass leaves the opposite dimension unbalanced again, and on
    // the big degenerate systems the residual imbalance is what drove the basis
    // factorizations ill-conditioned.
    // Exact arithmetic skips equilibration entirely: conditioning is a floating-point
    // concern, and dividing the (almost always small-integer) Handelman data by
    // max-abs scale factors would only manufacture fraction-heavy rationals — pushing
    // the i128 fast path into gcd-heavy or BigInt territory on every pivot.
    let equilibration_passes = if S::IS_EXACT { 0 } else { 3 };
    let mut form = form.clone();
    let abs = abs_scalar::<S>;
    let mut column_scales = vec![S::one(); num_structural];
    for _ in 0..equilibration_passes {
        for (column, scale) in column_scales.iter_mut().enumerate() {
            let mut max_abs = S::zero();
            for row in &form.matrix {
                let a = abs(&row[column]);
                if max_abs.lt(&a) {
                    max_abs = a;
                }
            }
            if !max_abs.is_zero() {
                *scale = scale.mul(&max_abs);
                for row in &mut form.matrix {
                    row[column] = row[column].div(&max_abs);
                }
                form.costs[column] = form.costs[column].div(&max_abs);
            }
        }
        for (row, rhs) in form.matrix.iter_mut().zip(form.rhs.iter_mut()) {
            let mut max_abs = S::zero();
            for cell in row.iter().chain(std::iter::once(&*rhs)) {
                let a = abs(cell);
                if max_abs.lt(&a) {
                    max_abs = a;
                }
            }
            if max_abs.is_zero() {
                continue;
            }
            for cell in row.iter_mut() {
                *cell = cell.div(&max_abs);
            }
            *rhs = rhs.div(&max_abs);
        }
    }
    // Anti-degeneracy perturbation (see `solve_standard_form`): a small deterministic
    // positive offset per row, varied across rows so no two ratios tie. Only ever
    // non-zero on the floating-point retry path.
    let mut total_perturbation = 0.0f64;
    if perturbation > 0.0 {
        for (index, rhs) in form.rhs.iter_mut().enumerate() {
            let offset = perturbation * (1.0 + ((index * 7919) % 104_729) as f64 / 104_729.0);
            total_perturbation += offset;
            *rhs = rhs.add(&S::from_rational(&dca_numeric::Rational::from_f64(offset)));
        }
    }
    let form = &form;

    if num_rows == 0 {
        // No constraints: the optimum is 0 unless some cost is negative (unbounded).
        let unbounded = form.costs.iter().any(Scalar::is_negative);
        let mut solution =
            RawSolution::bare(if unbounded { LpStatus::Unbounded } else { LpStatus::Optimal });
        solution.values = vec![S::zero(); num_structural];
        return solution;
    }

    // The f64 backend cannot distinguish a residual of accumulated round-off from a
    // genuinely infeasible system near the tolerance; `Infeasible` is a *definitive*
    // answer to callers (it becomes `NoThresholdFound`), so it is only reported when
    // the phase-1 optimum is clearly above this noise floor. Sub-threshold residuals
    // proceed to phase 2; the final answer is re-validated against the original
    // constraints by `LpProblem::solve_f64` either way.
    let noise_floor = 1e-6 * (num_rows as f64).max(1.0) + 2.0 * total_perturbation;

    // Primary path: the sparse revised simplex. The dense tableau remains as the
    // floating-point rescue when the revised run fails to converge (`DCA_LP_DENSE=1`
    // forces it outright, for A/B comparison) — but only up to a size cap: on the
    // biggest systems a dense rescue burns minutes of budget that the exact
    // backend's anytime path (see `dca_core`'s fallback chain) spends better.
    const DENSE_FALLBACK_MAX_ROWS: usize = 512;
    let force_dense = std::env::var("DCA_LP_DENSE").is_ok();
    let mut outcome = if force_dense {
        solve_dense(form, deadline, noise_floor)
    } else {
        let revised = solve_revised_capped(form, deadline, warm, noise_floor, iter_cap);
        if !S::IS_EXACT
            && revised.status == LpStatus::IterationLimit
            && iter_cap.is_none()
            && num_rows <= DENSE_FALLBACK_MAX_ROWS
        {
            let mut dense = solve_dense(form, deadline, noise_floor);
            dense.iterations += revised.iterations;
            dense
        } else {
            revised
        }
    };

    // Undo the column scaling: x_j = y_j / s_j.
    if outcome.status == LpStatus::Optimal {
        for (value, scale) in outcome.values.iter_mut().zip(&column_scales) {
            *value = value.div(scale);
        }
    } else {
        outcome.values = Vec::new();
    }
    let phases = PhaseStats {
        lu_updates: outcome.lu_updates,
        lu_refactorizations: outcome.lu_refactorizations,
        ..PhaseStats::default()
    };
    RawSolution {
        status: outcome.status,
        values: outcome.values,
        basis: outcome.basis,
        iterations: outcome.iterations,
        presolve_rows_removed: 0,
        presolve_cols_removed: 0,
        truncated: outcome.truncated,
        // Exact runs skip equilibration entirely, so the revised simplex's terminal
        // dual needs no unscaling; the `f64` backend never sets one.
        dual: outcome.dual,
        dual_bound: None,
        phases,
    }
}

/// The dense two-phase tableau solve (the crate's original algorithm), over an already
/// equilibrated and perturbed system. Kept as the floating-point rescue path; see the
/// module docs.
fn solve_dense<S: Scalar>(
    form: &StandardForm<S>,
    deadline: &Deadline,
    noise_floor: f64,
) -> crate::revised::RevisedOutcome<S> {
    use crate::revised::RevisedOutcome;
    let num_rows = form.matrix.len();
    let num_structural = form.costs.len();
    let fail = |status| RevisedOutcome {
        status,
        values: Vec::new(),
        basis: Vec::new(),
        iterations: 0,
        truncated: false,
        lu_updates: 0,
        lu_refactorizations: 0,
        dual: None,
    };

    // Phase 1: add one artificial variable per row and minimize their sum.
    let num_cols = num_structural + num_rows;
    let mut rows = Vec::with_capacity(num_rows);
    for (i, row) in form.matrix.iter().enumerate() {
        let mut extended = row.clone();
        extended.resize(num_cols, S::zero());
        extended[num_structural + i] = S::one();
        rows.push(extended);
    }
    // The untouched extended system, kept for mid-run and verdict-time tableau
    // refactorization (f64 drift recovery).
    let original_rows = rows.clone();
    let original_rhs = form.rhs.clone();
    let original = (original_rows.as_slice(), original_rhs.as_slice());
    let mut tableau = Tableau {
        rows,
        rhs: form.rhs.clone(),
        basis: (num_structural..num_cols).collect(),
        num_cols,
    };
    let mut phase1_costs = vec![S::zero(); num_cols];
    for cost in phase1_costs.iter_mut().skip(num_structural) {
        *cost = S::one();
    }
    let max_iters = 200 * (num_rows + num_cols) + 2000;
    let debug = std::env::var("DCA_LP_DEBUG").is_ok();
    let mut iterations = 0usize;
    let phase1_start = Instant::now();
    let status = tableau.optimize(
        &phase1_costs,
        num_cols,
        max_iters,
        deadline,
        Some(original),
        &mut iterations,
    );
    if debug {
        eprintln!(
            "[lp] dense phase1: {:?} in {:.2}s ({} rows, {} cols)",
            status,
            phase1_start.elapsed().as_secs_f64(),
            num_rows,
            num_cols,
        );
    }
    if status == LpStatus::IterationLimit || status == LpStatus::TimedOut {
        return fail(status);
    }
    if status == LpStatus::Unbounded {
        // Phase 1 minimizes a sum of non-negative variables: its objective is bounded
        // below by zero, so "unbounded" can only be numerical noise. Report
        // non-convergence rather than letting the verdict fall through to the
        // infeasibility check (which is how a stalled `SimpleSingle2` phase 1 once
        // turned 80 s of drift into a wrong definitive answer).
        return fail(LpStatus::IterationLimit);
    }
    let phase1_value = tableau.objective_value(&phase1_costs);
    if phase1_value.is_positive()
        && (S::IS_EXACT || phase1_value.to_f64() > noise_floor) {
            if debug {
                eprintln!(
                    "[lp] dense phase1 positive: value = {:e}, rows = {}, cols = {}",
                    phase1_value.to_f64(),
                    num_rows,
                    num_cols
                );
            }
            return fail(LpStatus::Infeasible);
        }

    // Drive any remaining artificial variables out of the basis.
    for row in 0..num_rows {
        if tableau.basis[row] >= num_structural {
            // Find a structural column with a non-zero entry to pivot in.
            let pivot_col = (0..num_structural).find(|&j| !tableau.rows[row][j].is_zero());
            match pivot_col {
                Some(col) => tableau.pivot(row, col),
                None => {
                    // Redundant row: every structural coefficient is zero. The artificial
                    // stays basic at value zero, which is harmless for phase 2 as long as
                    // it can never re-enter (we restrict entering columns to structural).
                }
            }
        }
    }

    // Phase 2: original costs (artificial columns are excluded from entering).
    let mut phase2_costs = form.costs.clone();
    phase2_costs.resize(num_cols, S::zero());
    let phase2_start = Instant::now();
    let status = tableau.optimize(
        &phase2_costs,
        num_structural,
        max_iters,
        deadline,
        Some(original),
        &mut iterations,
    );
    if debug {
        eprintln!("[lp] dense phase2: {:?} in {:.2}s", status, phase2_start.elapsed().as_secs_f64());
    }
    // Anytime semantics (mirrors the revised path): a deadline hit during phase 2
    // leaves a primal-feasible tableau whose objective is a sound upper bound.
    let truncated = status == LpStatus::TimedOut
        && !S::IS_EXACT
        && !tableau.rhs.iter().any(|v| v.to_f64() < -1e-6);
    if debug && status == LpStatus::TimedOut {
        let min_rhs = tableau.rhs.iter().map(Scalar::to_f64).fold(f64::INFINITY, f64::min);
        eprintln!("[lp] dense phase2 timeout: truncated={truncated}, min rhs = {min_rhs:e}");
    }
    if status != LpStatus::Optimal && !truncated {
        return fail(status);
    }

    let mut values = vec![S::zero(); num_structural];
    for (row, &basic) in tableau.basis.iter().enumerate() {
        if basic < num_structural && !tableau.rhs[row].is_negative() {
            values[basic] = tableau.rhs[row].clone();
        }
    }
    RevisedOutcome {
        status: LpStatus::Optimal,
        values,
        basis: tableau.basis.iter().copied().filter(|&b| b < num_structural).collect(),
        iterations,
        truncated,
        // The dense tableau maintains no LU at all; its pivots are neither eta
        // updates nor refactorizations.
        lu_updates: 0,
        lu_refactorizations: 0,
        dual: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_numeric::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    /// minimize -x - y  s.t.  x + y + s = 4  (i.e. x + y <= 4), expects objective -4.
    #[test]
    fn standard_form_direct() {
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(1, 1), r(1, 1)]],
            rhs: vec![r(4, 1)],
            costs: vec![r(-1, 1), r(-1, 1), r(0, 1)],
            model_columns: vec![(0, None), (1, None)],
        };
        let sol = solve_standard_form(&form, &Deadline::unlimited(), None);
        assert_eq!(sol.status, LpStatus::Optimal);
        let total = sol.values[0].clone() + sol.values[1].clone();
        assert_eq!(total, r(4, 1));
    }

    #[test]
    fn empty_problem() {
        let form: StandardForm<Rational> = StandardForm {
            matrix: vec![],
            rhs: vec![],
            costs: vec![Rational::one()],
            model_columns: vec![(0, None)],
        };
        let sol = solve_standard_form(&form, &Deadline::unlimited(), None);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.values, vec![Rational::zero()]);
    }

    #[test]
    fn redundant_equality_rows() {
        // x = 2 stated twice; minimize x.
        let form = StandardForm {
            matrix: vec![vec![r(1, 1)], vec![r(1, 1)]],
            rhs: vec![r(2, 1), r(2, 1)],
            costs: vec![r(1, 1)],
            model_columns: vec![(0, None)],
        };
        let sol = solve_standard_form(&form, &Deadline::unlimited(), None);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.values[0], r(2, 1));
    }

    /// Differential check: the revised simplex and the dense tableau must agree on
    /// status and objective for a swarm of small deterministic pseudo-random LPs
    /// (exact arithmetic, so any disagreement is an algorithmic bug, not round-off).
    #[test]
    fn revised_and_dense_agree_on_random_small_lps() {
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..1500 {
            let m = 1 + (next() % 7) as usize;
            let n = 1 + (next() % 9) as usize;
            let matrix: Vec<Vec<Rational>> = (0..m)
                .map(|_| (0..n).map(|_| r((next() % 7) as i64 - 3, 1)).collect())
                .collect();
            let rhs: Vec<Rational> = (0..m).map(|_| r((next() % 5) as i64, 1)).collect();
            let costs: Vec<Rational> = (0..n).map(|_| r((next() % 7) as i64 - 3, 1)).collect();
            let form = StandardForm { matrix, rhs, costs: costs.clone(), model_columns: Vec::new() };
            let objective = |values: &[Rational]| -> Rational {
                values
                    .iter()
                    .zip(&costs)
                    .fold(Rational::zero(), |acc, (v, c)| &acc + &(v * c))
            };
            let revised = crate::revised::solve_revised(&form, &Deadline::unlimited(), None, 0.0);
            let dense = solve_dense(&form, &Deadline::unlimited(), 0.0);
            assert_eq!(
                revised.status, dense.status,
                "case {case}: status diverged on {form:?}"
            );
            if revised.status == LpStatus::Optimal {
                assert_eq!(
                    objective(&revised.values),
                    objective(&dense.values),
                    "case {case}: objective diverged on {form:?}"
                );
            }
        }
    }

    /// The same differential check on the `f64` path, biased toward the degenerate
    /// all-zero right-hand sides the Handelman encodings produce.
    #[test]
    fn revised_and_dense_agree_on_degenerate_f64_lps() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..600 {
            let m = 2 + (next() % 8) as usize;
            let n = 2 + (next() % 12) as usize;
            let matrix: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| ((next() % 7) as i64 - 3) as f64).collect())
                .collect();
            // Three out of four right-hand sides are zero: maximal degeneracy.
            let rhs: Vec<f64> = (0..m)
                .map(|_| if next() % 4 == 0 { (next() % 5) as f64 } else { 0.0 })
                .collect();
            let costs: Vec<f64> = (0..n).map(|_| ((next() % 7) as i64 - 3) as f64).collect();
            let form = StandardForm { matrix, rhs, costs: costs.clone(), model_columns: Vec::new() };
            let objective = |values: &[f64]| -> f64 {
                values.iter().zip(&costs).map(|(v, c)| v * c).sum()
            };
            let revised = crate::revised::solve_revised(&form, &Deadline::unlimited(), None, 0.0);
            let dense = solve_dense(&form, &Deadline::unlimited(), 0.0);
            // `IterationLimit` is an honest "don't know" on either side; only compare
            // definitive answers.
            if revised.status == LpStatus::IterationLimit
                || dense.status == LpStatus::IterationLimit
            {
                continue;
            }
            assert_eq!(
                revised.status, dense.status,
                "case {case}: status diverged on {form:?}"
            );
            if revised.status == LpStatus::Optimal {
                let (a, b) = (objective(&revised.values), objective(&dense.values));
                assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs())),
                    "case {case}: objective diverged ({a} vs {b}) on {form:?}"
                );
            }
        }
    }

    /// Medium-sized degenerate systems: enough pivots to cross the periodic
    /// reinversion threshold, so the eta-file rebuild itself is exercised.
    #[test]
    fn revised_handles_reinversion_on_medium_degenerate_lps() {
        let mut seed = 0xDEADBEEFCAFEBABEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..20 {
            let m = 16 + (next() % 24) as usize;
            let n = m + 8 + (next() % 32) as usize;
            let matrix: Vec<Vec<f64>> = (0..m)
                .map(|_| {
                    (0..n)
                        .map(|_| {
                            if next() % 3 == 0 {
                                ((next() % 9) as i64 - 4) as f64
                            } else {
                                0.0
                            }
                        })
                        .collect()
                })
                .collect();
            let rhs: Vec<f64> = (0..m)
                .map(|_| if next() % 3 == 0 { (next() % 6) as f64 } else { 0.0 })
                .collect();
            let costs: Vec<f64> = (0..n).map(|_| ((next() % 9) as i64 - 4) as f64).collect();
            let form = StandardForm { matrix, rhs, costs: costs.clone(), model_columns: Vec::new() };
            let objective = |values: &[f64]| -> f64 {
                values.iter().zip(&costs).map(|(v, c)| v * c).sum()
            };
            let revised = crate::revised::solve_revised(&form, &Deadline::unlimited(), None, 0.0);
            let dense = solve_dense(&form, &Deadline::unlimited(), 0.0);
            if revised.status == LpStatus::IterationLimit
                || dense.status == LpStatus::IterationLimit
            {
                continue;
            }
            assert_eq!(
                revised.status, dense.status,
                "case {case} ({m}x{n}): status diverged"
            );
            if revised.status == LpStatus::Optimal {
                let (a, b) = (objective(&revised.values), objective(&dense.values));
                assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs())),
                    "case {case} ({m}x{n}): objective diverged ({a} vs {b})"
                );
            }
        }
    }

    #[test]
    fn infeasible_standard_form() {
        // x = 2 and x = 3 simultaneously.
        let form = StandardForm {
            matrix: vec![vec![r(1, 1)], vec![r(1, 1)]],
            rhs: vec![r(2, 1), r(3, 1)],
            costs: vec![r(1, 1)],
            model_columns: vec![(0, None)],
        };
        let sol = solve_standard_form(&form, &Deadline::unlimited(), None);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }
}
