//! Float-first, exact-repair LP driver: `f64` does the pivoting, rationals certify.
//!
//! The QSopt_ex-style precision-boosting scheme this module implements splits every
//! solve into three unequal parts:
//!
//! 1. **Float phase** — the sparse revised simplex runs phases 1–2 entirely in
//!    hardware floats (Devex pricing, equilibration, anti-degeneracy perturbation) and
//!    proposes a candidate optimal *basis*. Floats decide nothing; they only guess.
//! 2. **Certification** — the candidate basis is factorized in exact rationals with
//!    the Markowitz-ordered sparse LU ([`crate::lu`]); `x_B = B⁻¹b` and the reduced
//!    costs `c_j − c_B B⁻¹ A_j` are recomputed exactly, and the basis is accepted iff
//!    it is exactly feasible (`x_B ≥ 0`, artificial rows exactly zero) and exactly
//!    optimal (every nonbasic reduced cost `≥ 0`). An accepted answer is therefore a
//!    full exact-rational certificate, no different from one the exact simplex
//!    produces — it was merely *found* at f64 speed.
//! 3. **Exact repair** — on rejection (or when the float phase fails outright), the
//!    exact simplex is warm-started from the candidate basis, so it performs only the
//!    few pivots separating the float vertex from the true optimum. Repair rounds are
//!    pivot-capped and re-certified ([`REPAIR_CAPS`] rounds), after which the driver
//!    falls back to the pure exact path (uncapped), which is self-certifying.
//!
//! Soundness: every verdict this driver issues — optimal value, infeasible,
//! unbounded — is produced by exact-rational arithmetic (the certifier or the exact
//! simplex). The `f64` phase only ever influences *which basis* the exact machinery
//! looks at first, never what it concludes.

use std::time::{Duration, Instant};

use dca_numeric::Rational;

use crate::lu::factorize_markowitz;
use crate::presolve::presolve;
use crate::problem::LpStatus;
use crate::revised::Columns;
use crate::scalar::Scalar;
use crate::simplex::{
    solve_standard_form_inner, RawSolution, StandardForm, PERTURBATION, PERTURB_ROWS_THRESHOLD,
};

/// Per-phase effort accounting of one float-first solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PhaseStats {
    /// Wall-clock spent in presolve.
    pub presolve_time: Duration,
    /// Wall-clock spent in the `f64` simplex phase.
    pub float_time: Duration,
    /// Wall-clock spent factorizing and pricing in the exact certifier.
    pub certify_time: Duration,
    /// Wall-clock spent in exact repair pivoting.
    pub repair_time: Duration,
    /// Pivots performed by the `f64` phase.
    pub float_iterations: usize,
    /// Pivots performed by the exact simplex (repair + fallback).
    pub exact_iterations: usize,
    /// `true` when the reported result carries an exact-rational certificate (always
    /// the case for terminal verdicts of this driver; recorded for the audit trail).
    pub certified: bool,
    /// Certification rounds performed (0 = the float phase never produced a
    /// candidate, 1 = first candidate accepted, …).
    pub certify_rounds: usize,
}

/// Exact certificate for an accepted basis.
struct Certificate {
    /// Values of the structural columns.
    values: Vec<Rational>,
    /// The structural basis columns (for warm-starting follow-up solves).
    basis: Vec<usize>,
}

/// Repair-round pivot caps: round `k` may spend `REPAIR_CAPS[k]` exact pivots before
/// its basis is re-certified; after the last round the uncapped exact path runs.
const REPAIR_CAPS: [usize; 2] = [256, 2048];

/// Fraction of the remaining budget the float phase may consume (the exact phases
/// must keep the lion's share: they are the sound fallback with anytime semantics).
const FLOAT_BUDGET_FRACTION: f64 = 0.25;

/// Exact accept/reject of a candidate optimal basis for `min c·y, Ay = b, y ≥ 0`.
///
/// Returns the exact solution iff the basis is exactly primal feasible *and* exactly
/// dual feasible (optimal). Artificial rows (rank deficiency of the candidate) are
/// accepted only at exactly zero.
fn certify_basis(
    form: &StandardForm<Rational>,
    columns: &Columns<Rational>,
    basis: &[usize],
    deadline: Option<Instant>,
) -> Option<Certificate> {
    let m = columns.rows;
    let n = columns.cols.len();
    let past_deadline = || deadline.map_or(false, |d| Instant::now() >= d);
    // Certification is exact work too and must honor the per-attempt budget like
    // every other exact loop; an aborted certification is just a rejection — the
    // caller's repair/fallback path times out promptly on the same deadline.
    if past_deadline() {
        return None;
    }
    let lu = factorize_markowitz(columns, basis);
    if past_deadline() {
        return None;
    }

    // Exact primal feasibility: x_B = B⁻¹ b ≥ 0, with artificial rows exactly 0.
    let mut x_basic = form.rhs.clone();
    lu.factor.ftran(&mut x_basic);
    for (pos, value) in x_basic.iter().enumerate() {
        if value.is_negative() {
            return None;
        }
        if lu.factor.basis[pos] >= n && !value.is_zero() {
            return None;
        }
    }

    // Exact dual feasibility: y = c_B B⁻¹, r_j = c_j − y·A_j ≥ 0 for every nonbasic
    // structural column (artificials carry cost 0; basic columns price to 0 exactly).
    let mut y = vec![Rational::zero(); m];
    for (pos, value) in y.iter_mut().enumerate() {
        let col = lu.factor.basis[pos];
        if col < n {
            *value = form.costs[col].clone();
        }
    }
    lu.factor.btran(&mut y);
    let mut in_basis = vec![false; n];
    for &col in &lu.factor.basis {
        if col < n {
            in_basis[col] = true;
        }
    }
    for j in 0..n {
        if in_basis[j] {
            continue;
        }
        if j % 256 == 0 && past_deadline() {
            return None;
        }
        let reduced = form.costs[j].sub(&columns.dot(&y, j));
        if reduced.is_negative() {
            return None;
        }
    }

    let mut values = vec![Rational::zero(); n];
    for (pos, &col) in lu.factor.basis.iter().enumerate() {
        if col < n {
            values[col] = x_basic[pos].clone();
        }
    }
    let basis = lu.factor.basis.iter().copied().filter(|&col| col < n).collect();
    Some(Certificate { values, basis })
}

/// Solves a standard-form problem with the float-first / exact-repair loop.
///
/// The returned solution is always exact ([`Rational`]); see the module docs for the
/// soundness argument. `warm` carries preferred structural columns in original
/// (pre-presolve) indices, exactly like [`crate::simplex::solve_standard_form`].
pub(crate) fn solve_float_first(
    form: &StandardForm<Rational>,
    deadline: Option<Instant>,
    warm: Option<&[usize]>,
) -> RawSolution<Rational> {
    let debug = std::env::var("DCA_LP_DEBUG").is_ok();
    let num_original_cols = form.costs.len();
    let mut phases = PhaseStats::default();

    // Exact presolve (the rational pass may conclude infeasibility outright).
    let presolve_start = Instant::now();
    let pre = if std::env::var("DCA_LP_NO_PRESOLVE").is_ok() {
        crate::presolve::identity(form)
    } else {
        presolve(form)
    };
    phases.presolve_time = presolve_start.elapsed();
    if let Some(status) = pre.verdict {
        let mut solution = RawSolution::bare(status);
        solution.presolve_rows_removed = pre.rows_removed;
        solution.presolve_cols_removed = pre.cols_removed;
        phases.certified = true; // the verdict is exact-rational by construction
        solution.phases = phases;
        return solution;
    }
    if pre.form.matrix.is_empty() {
        // Presolve resolved every constraint exactly; see `solve_standard_form`.
        let unbounded = pre.form.costs.iter().any(Scalar::is_negative);
        let mut solution =
            RawSolution::bare(if unbounded { LpStatus::Unbounded } else { LpStatus::Optimal });
        if !unbounded {
            solution.values =
                pre.restore(&vec![Rational::zero(); pre.kept_cols.len()], num_original_cols);
        }
        solution.presolve_rows_removed = pre.rows_removed;
        solution.presolve_cols_removed = pre.cols_removed;
        phases.certified = true;
        solution.phases = phases;
        return solution;
    }
    let warm_reduced: Option<Vec<usize>> = warm.map(|w| pre.map_cols(w));

    // `DCA_LP_NO_FLOAT=1` skips the f64 phase entirely (A/B switch: pure exact path
    // with the caller's warm start, same certificates, no float influence at all).
    if std::env::var("DCA_LP_NO_FLOAT").is_ok() {
        let repair_start = Instant::now();
        let mut solution = solve_standard_form_inner::<Rational>(
            &pre.form,
            deadline,
            0.0,
            warm_reduced.as_deref(),
            None,
        );
        phases.repair_time = repair_start.elapsed();
        phases.exact_iterations = solution.iterations;
        if solution.status == LpStatus::Optimal {
            solution.values = pre.restore(&solution.values, num_original_cols);
        }
        solution.basis = solution.basis.iter().map(|&col| pre.kept_cols[col]).collect();
        solution.presolve_rows_removed = pre.rows_removed;
        solution.presolve_cols_removed = pre.cols_removed;
        phases.certified = true;
        solution.phases = phases;
        return solution;
    }

    // ---- Float phase: solve the f64 image of the reduced problem. -----------------
    let float_start = Instant::now();
    let float_form = StandardForm {
        matrix: pre
            .form
            .matrix
            .iter()
            .map(|row| row.iter().map(Rational::to_f64).collect())
            .collect(),
        rhs: pre.form.rhs.iter().map(Rational::to_f64).collect(),
        costs: pre.form.costs.iter().map(Rational::to_f64).collect(),
        model_columns: pre.form.model_columns.clone(),
    };
    // The float phase only proposes a basis; cap its budget so the exact phases keep
    // most of the wall-clock (they are the sound anytime fallback).
    let float_deadline = deadline.map(|d| {
        let remaining = d.saturating_duration_since(Instant::now());
        Instant::now() + remaining.mul_f64(FLOAT_BUDGET_FRACTION)
    });
    let perturbation =
        if float_form.matrix.len() >= PERTURB_ROWS_THRESHOLD { PERTURBATION } else { 0.0 };
    let float = solve_standard_form_inner(
        &float_form,
        float_deadline,
        perturbation,
        warm_reduced.as_deref(),
        None,
    );
    phases.float_time = float_start.elapsed();
    phases.float_iterations = float.iterations;
    if debug {
        eprintln!(
            "[lp] float-first: f64 phase {:?} in {:.2}s ({} pivots, {} rows, {} cols)",
            float.status,
            phases.float_time.as_secs_f64(),
            float.iterations,
            pre.form.matrix.len(),
            pre.form.costs.len()
        );
    }

    let columns = Columns::from_form(&pre.form);
    let mut candidate: Vec<usize> = float.basis.clone();
    let mut result: Option<RawSolution<Rational>> = None;

    // ---- Certify / repair loop. ----------------------------------------------------
    // Round r: certify the current candidate; on rejection run a pivot-capped exact
    // repair warm-started from it and try again. After the capped rounds the exact
    // simplex runs uncapped (self-certifying).
    if float.status == LpStatus::Optimal && !float.truncated {
        for (round, cap) in REPAIR_CAPS.iter().enumerate() {
            let certify_start = Instant::now();
            let certificate = certify_basis(&pre.form, &columns, &candidate, deadline);
            phases.certify_time += certify_start.elapsed();
            phases.certify_rounds = round + 1;
            if let Some(certificate) = certificate {
                if debug {
                    eprintln!(
                        "[lp] float-first: certified in round {} ({:.3}s certify)",
                        round + 1,
                        phases.certify_time.as_secs_f64()
                    );
                }
                let mut solution = RawSolution::bare(LpStatus::Optimal);
                solution.values = certificate.values;
                solution.basis = certificate.basis;
                result = Some(solution);
                break;
            }
            if debug {
                eprintln!(
                    "[lp] float-first: round {} rejected; exact repair (cap {cap})",
                    round + 1
                );
            }
            let repair_start = Instant::now();
            let repaired = solve_standard_form_inner::<Rational>(
                &pre.form,
                deadline,
                0.0,
                Some(&candidate),
                Some(*cap),
            );
            phases.repair_time += repair_start.elapsed();
            phases.exact_iterations += repaired.iterations;
            match repaired.status {
                // The capped exact run converged: its answer is exact and final.
                LpStatus::Optimal | LpStatus::Infeasible | LpStatus::Unbounded => {
                    result = Some(repaired);
                    break;
                }
                // Deadline hit: no time left to keep repairing.
                LpStatus::TimedOut => {
                    result = Some(repaired);
                    break;
                }
                // Cap hit: continue from wherever the repair stopped.
                _ => {
                    if !repaired.basis.is_empty() {
                        candidate = repaired.basis;
                    }
                }
            }
        }
    }

    // ---- Pure exact fallback (uncapped, warm-started from the best basis seen). ----
    let mut solution = match result {
        Some(solution) => solution,
        None => {
            let warm_exact: Option<&[usize]> = if !candidate.is_empty() {
                Some(&candidate)
            } else {
                warm_reduced.as_deref()
            };
            let repair_start = Instant::now();
            let exact =
                solve_standard_form_inner::<Rational>(&pre.form, deadline, 0.0, warm_exact, None);
            phases.repair_time += repair_start.elapsed();
            phases.exact_iterations += exact.iterations;
            if debug {
                eprintln!(
                    "[lp] float-first: exact fallback {:?} in {:.2}s ({} pivots)",
                    exact.status,
                    phases.repair_time.as_secs_f64(),
                    exact.iterations
                );
            }
            exact
        }
    };

    // Map the reduced solution back to the original column space.
    if solution.status == LpStatus::Optimal {
        solution.values = pre.restore(&solution.values, num_original_cols);
    }
    solution.basis = solution.basis.iter().map(|&col| pre.kept_cols[col]).collect();
    solution.presolve_rows_removed = pre.rows_removed;
    solution.presolve_cols_removed = pre.cols_removed;
    solution.iterations = phases.float_iterations + phases.exact_iterations;
    // Every terminal verdict above came out of exact arithmetic: the certifier, the
    // exact repair, or the exact fallback. (A truncated anytime answer is exactly
    // feasible — its bound is sound — but not a proven optimum.)
    phases.certified = true;
    solution.phases = phases;
    solution
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    /// minimize -x - y  s.t.  x + y + s = 4: optimum -4 at x + y = 4.
    #[test]
    fn float_first_certifies_a_simple_optimum() {
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(1, 1), r(1, 1)]],
            rhs: vec![r(4, 1)],
            costs: vec![r(-1, 1), r(-1, 1), r(0, 1)],
            model_columns: Vec::new(),
        };
        let solution = solve_float_first(&form, None, None);
        assert_eq!(solution.status, LpStatus::Optimal);
        assert!(solution.phases.certified);
        assert!(solution.phases.certify_rounds >= 1, "the certifier must have run");
        assert_eq!(solution.phases.exact_iterations, 0, "no exact repair needed");
        let total = solution.values[0].clone() + solution.values[1].clone();
        assert_eq!(total, r(4, 1));
    }

    #[test]
    fn float_first_agrees_with_exact_on_infeasible() {
        let form = StandardForm {
            matrix: vec![vec![r(1, 1)], vec![r(1, 1)]],
            rhs: vec![r(2, 1), r(3, 1)],
            costs: vec![r(0, 1)],
            model_columns: Vec::new(),
        };
        let solution = solve_float_first(&form, None, None);
        assert_eq!(solution.status, LpStatus::Infeasible);
    }

    #[test]
    fn certifier_rejects_a_suboptimal_basis() {
        // minimize x1 with x1 + x2 = 1: optimum picks x2 basic. The basis {x1} is
        // feasible but not optimal, so certification must fail on it.
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(1, 1)]],
            rhs: vec![r(1, 1)],
            costs: vec![r(1, 1), r(0, 1)],
            model_columns: Vec::new(),
        };
        let columns = Columns::from_form(&form);
        assert!(
            certify_basis(&form, &columns, &[0], None).is_none(),
            "x1 basic is not optimal"
        );
        let certificate =
            certify_basis(&form, &columns, &[1], None).expect("x2 basic is optimal");
        assert_eq!(certificate.values, vec![r(0, 1), r(1, 1)]);
    }

    #[test]
    fn certifier_rejects_infeasible_bases_and_nonzero_artificials() {
        // x1 - x2 = 1 with basis {x2}: x2 = -1 < 0 → infeasible basis.
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(-1, 1)]],
            rhs: vec![r(1, 1)],
            costs: vec![r(0, 1), r(0, 1)],
            model_columns: Vec::new(),
        };
        let columns = Columns::from_form(&form);
        assert!(certify_basis(&form, &columns, &[1], None).is_none());
        // Empty candidate: the row is covered by an artificial that must be 0 but
        // solves to 1 → reject.
        assert!(certify_basis(&form, &columns, &[], None).is_none());
        // With rhs = 0 the all-artificial basis is exactly feasible and optimal.
        let zero_form = StandardForm { rhs: vec![r(0, 1)], ..form };
        let zero_columns = Columns::from_form(&zero_form);
        assert!(certify_basis(&zero_form, &zero_columns, &[], None).is_some());
    }
}
