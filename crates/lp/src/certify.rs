//! Float-first, exact-repair LP driver: `f64` does the pivoting, rationals certify.
//!
//! The QSopt_ex-style precision-boosting scheme this module implements splits every
//! solve into three unequal parts:
//!
//! 1. **Float phase** — the sparse revised simplex runs phases 1–2 entirely in
//!    hardware floats (Devex pricing, equilibration, anti-degeneracy perturbation) and
//!    proposes a candidate optimal *basis*. Floats decide nothing; they only guess.
//! 2. **Certification** — the candidate basis is factorized in exact rationals with
//!    the Markowitz-ordered sparse LU ([`crate::lu`]); `x_B = B⁻¹b` and the reduced
//!    costs `c_j − c_B B⁻¹ A_j` are recomputed exactly, and the basis is accepted iff
//!    it is exactly feasible (`x_B ≥ 0`, artificial rows exactly zero) and exactly
//!    optimal (every nonbasic reduced cost `≥ 0`). An accepted answer is therefore a
//!    full exact-rational certificate, no different from one the exact simplex
//!    produces — it was merely *found* at f64 speed.
//! 3. **Exact repair** — on rejection (or when the float phase fails outright), the
//!    exact simplex is warm-started from the candidate basis, so it performs only the
//!    few pivots separating the float vertex from the true optimum. Repair rounds are
//!    pivot-capped and re-certified ([`REPAIR_CAPS`] rounds), after which the driver
//!    falls back to the pure exact path (uncapped), which is self-certifying.
//!
//! Soundness: every verdict this driver issues — optimal value, infeasible,
//! unbounded — is produced by exact-rational arithmetic (the certifier or the exact
//! simplex). The `f64` phase only ever influences *which basis* the exact machinery
//! looks at first, never what it concludes.

use std::time::{Duration, Instant};

use dca_numeric::Rational;

use crate::deadline::Deadline;
use crate::fault::{self, FaultKind, SolvePhase};
use crate::lu::factorize_markowitz;
use crate::presolve::presolve;
use crate::problem::LpStatus;
use crate::revised::Columns;
use crate::scalar::Scalar;
use crate::simplex::{
    solve_standard_form_inner, RawSolution, StandardForm, PERTURBATION, PERTURB_ROWS_THRESHOLD,
};

/// Per-phase effort accounting of one float-first solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PhaseStats {
    /// Wall-clock spent in presolve.
    pub presolve_time: Duration,
    /// Wall-clock spent in the `f64` simplex phase.
    pub float_time: Duration,
    /// Wall-clock spent factorizing and pricing in the exact certifier.
    pub certify_time: Duration,
    /// Wall-clock spent in exact repair pivoting.
    pub repair_time: Duration,
    /// Pivots performed by the `f64` phase.
    pub float_iterations: usize,
    /// Pivots performed by the exact simplex (repair + fallback).
    pub exact_iterations: usize,
    /// `true` when the reported result carries an exact-rational certificate (always
    /// the case for terminal verdicts of this driver; recorded for the audit trail).
    pub certified: bool,
    /// Certification rounds performed (0 = the float phase never produced a
    /// candidate, 1 = first candidate accepted, …).
    pub certify_rounds: usize,
    /// Lazy row-generation candidate columns (Handelman product multipliers the
    /// caller marked deferrable) that survived presolve. 0 on the eager path.
    pub products_total: usize,
    /// Lazy candidate columns actually activated by separation (present in the
    /// final solve). 0 on the eager path.
    pub products_generated: usize,
    /// Row-generation solve rounds (1 = the initial core sufficed). 0 on the
    /// eager path.
    pub separation_rounds: usize,
    /// Exact simplex pivots absorbed as incremental rank-1 eta updates of the
    /// rational LU (exact backend only; the f64 phase reports 0 here).
    pub lu_updates: usize,
    /// Full Markowitz refactorizations performed mid-run by the exact simplex
    /// (growth-triggered rebuilds; the initial warm-start build is not counted).
    pub lu_refactorizations: usize,
}

/// Exact certificate for an accepted basis.
struct Certificate {
    /// Values of the structural columns.
    values: Vec<Rational>,
    /// The structural basis columns (for warm-starting follow-up solves).
    basis: Vec<usize>,
    /// The exact optimal dual `y = c_B B⁻¹`. Verified dual-feasible over every
    /// column of the certified problem; the row-generation driver prices lazily
    /// excluded columns against it to extend the certificate to the full set.
    dual: Vec<Rational>,
}

/// Accept/reject verdict of one certification pass.
enum Certified {
    /// Exactly primal and dual feasible: an accepted optimum with its certificate.
    Accepted(Certificate),
    /// Rejected. When the basis was exactly *dual* feasible but primal infeasible,
    /// weak duality makes `y·b` an exact lower bound on the optimum, reported here
    /// so a later truncated (anytime) answer can bracket the unproven optimum.
    Rejected {
        dual_bound: Option<Rational>,
    },
}

/// Repair-round pivot caps: round `k` may spend `REPAIR_CAPS[k]` exact pivots before
/// its basis is re-certified; after the last round the uncapped exact path runs.
const REPAIR_CAPS: [usize; 2] = [256, 2048];

/// Fraction of the remaining budget the float phase may consume (the exact phases
/// must keep the lion's share: they are the sound fallback with anytime semantics).
const FLOAT_BUDGET_FRACTION: f64 = 0.25;

/// Exact accept/reject of a candidate optimal basis for `min c·y, Ay = b, y ≥ 0`.
///
/// Returns the exact solution iff the basis is exactly primal feasible *and* exactly
/// dual feasible (optimal). Artificial rows (rank deficiency of the candidate) are
/// accepted only at exactly zero.
fn certify_basis(
    form: &StandardForm<Rational>,
    columns: &Columns<Rational>,
    basis: &[usize],
    deadline: &Deadline,
) -> Certified {
    let m = columns.rows;
    let n = columns.cols.len();
    // Certification is exact work too and must honor the per-attempt budget like
    // every other exact loop; an aborted certification is just a rejection — the
    // caller's repair/fallback path times out promptly on the same deadline.
    if deadline.expired() {
        return Certified::Rejected { dual_bound: None };
    }
    let lu = factorize_markowitz(columns, basis);
    if deadline.expired() {
        return Certified::Rejected { dual_bound: None };
    }

    // Exact primal feasibility: x_B = B⁻¹ b ≥ 0, with artificial rows exactly 0.
    // A violation no longer aborts the pass: the dual pricing below may still
    // salvage an exact lower bound from the rejected basis.
    let mut x_basic = form.rhs.clone();
    lu.factor.ftran(&mut x_basic);
    let primal_ok = x_basic.iter().enumerate().all(|(pos, value)| {
        !value.is_negative() && (lu.factor.basis[pos] < n || value.is_zero())
    });

    // Exact dual feasibility: y = c_B B⁻¹, r_j = c_j − y·A_j ≥ 0 for every nonbasic
    // structural column (artificials carry cost 0; basic columns price to 0 exactly).
    let mut y = vec![Rational::zero(); m];
    for (pos, value) in y.iter_mut().enumerate() {
        let col = lu.factor.basis[pos];
        if col < n {
            *value = form.costs[col].clone();
        }
    }
    lu.factor.btran(&mut y);
    let mut in_basis = vec![false; n];
    for &col in &lu.factor.basis {
        if col < n {
            in_basis[col] = true;
        }
    }
    for (j, &basic) in in_basis.iter().enumerate() {
        if basic {
            continue;
        }
        if j % 256 == 0 && deadline.expired() {
            return Certified::Rejected { dual_bound: None };
        }
        let reduced = form.costs[j].sub(&columns.dot(&y, j));
        if reduced.is_negative() {
            return Certified::Rejected { dual_bound: None };
        }
    }

    if !primal_ok {
        // Dual feasible, primal infeasible: for any feasible x, c·x ≥ y·Ax = y·b
        // (weak duality; artificial basis slots carry cost 0 and structural pricing
        // held above), so `y·b` is an exact lower bound on the optimum.
        let bound = y
            .iter()
            .zip(&form.rhs)
            .fold(Rational::zero(), |acc, (y_i, b_i)| acc.add(&y_i.mul(b_i)));
        return Certified::Rejected { dual_bound: Some(bound) };
    }

    let mut values = vec![Rational::zero(); n];
    for (pos, &col) in lu.factor.basis.iter().enumerate() {
        if col < n {
            values[col] = x_basic[pos].clone();
        }
    }
    let basis = lu.factor.basis.iter().copied().filter(|&col| col < n).collect();
    Certified::Accepted(Certificate { values, basis, dual: y })
}

/// Exact Farkas certificate extracted from a terminal *infeasible* exact solve.
///
/// The exact simplex concludes `Infeasible` only at a phase-1 optimum with a
/// positive artificial sum, so refactorizing its final basis and pricing with the
/// phase-1 costs (`1` on artificial rows, `0` on structural columns) yields
/// `y₁ = c_B B⁻¹` with `y₁·b > 0` and `y₁·A_j ≤ 0` for every solved column. Both
/// properties are *re-verified exactly* here — the Markowitz rebuild may pivot
/// the given columns onto different rows than the simplex did, and a certificate
/// is only returned when it genuinely proves `{Ax = b, x ≥ 0}` empty for the
/// solved column set. A lazily excluded column can break the certificate only by
/// pricing `y₁·A_j > 0`; if none does, the same `y₁` certifies the full system
/// infeasible.
fn phase1_farkas(
    form: &StandardForm<Rational>,
    columns: &Columns<Rational>,
    basis: &[usize],
    deadline: &Deadline,
) -> Option<Vec<Rational>> {
    if deadline.expired() {
        return None;
    }
    let n = columns.cols.len();
    let lu = factorize_markowitz(columns, basis);
    let mut y = vec![Rational::zero(); columns.rows];
    for (pos, value) in y.iter_mut().enumerate() {
        if lu.factor.basis[pos] >= n {
            *value = Rational::one();
        }
    }
    lu.factor.btran(&mut y);
    let mut y_dot_b = Rational::zero();
    for (value, b) in y.iter().zip(&form.rhs) {
        y_dot_b = y_dot_b.add(&value.mul(b));
    }
    if !y_dot_b.is_positive() {
        return None;
    }
    for j in 0..n {
        if j % 256 == 0 && deadline.expired() {
            return None;
        }
        if columns.dot(&y, j).is_positive() {
            return None;
        }
    }
    Some(y)
}

/// Solves a standard-form problem with the float-first / exact-repair loop.
///
/// The returned solution is always exact ([`Rational`]); see the module docs for the
/// soundness argument. `warm` carries preferred structural columns in original
/// (pre-presolve) indices, exactly like [`crate::simplex::solve_standard_form`].
///
/// `lazy_cols` (also original indices) marks columns eligible for delayed
/// generation: the solve starts without them and brings them in only as exact
/// pricing demands ([`solve_with_row_generation`]). Passing an empty slice — or
/// setting `DCA_LP_NO_ROWGEN=1` — solves every column eagerly; either way the
/// verdict is identical.
pub(crate) fn solve_float_first(
    form: &StandardForm<Rational>,
    deadline: &Deadline,
    warm: Option<&[usize]>,
    lazy_cols: &[usize],
) -> RawSolution<Rational> {
    let debug = std::env::var("DCA_LP_DEBUG").is_ok();
    let num_original_cols = form.costs.len();
    let mut phases = PhaseStats::default();

    // Exact presolve (the rational pass may conclude infeasibility outright).
    let presolve_start = Instant::now();
    let pre = if std::env::var("DCA_LP_NO_PRESOLVE").is_ok() {
        crate::presolve::identity(form)
    } else {
        presolve(form)
    };
    phases.presolve_time = presolve_start.elapsed();
    if let Some(status) = pre.verdict {
        let mut solution = RawSolution::bare(status);
        solution.presolve_rows_removed = pre.rows_removed;
        solution.presolve_cols_removed = pre.cols_removed;
        phases.certified = true; // the verdict is exact-rational by construction
        solution.phases = phases;
        return solution;
    }
    if pre.form.matrix.is_empty() {
        // Presolve resolved every constraint exactly; see `solve_standard_form`.
        let unbounded = pre.form.costs.iter().any(Scalar::is_negative);
        let mut solution =
            RawSolution::bare(if unbounded { LpStatus::Unbounded } else { LpStatus::Optimal });
        if !unbounded {
            solution.values =
                pre.restore(&vec![Rational::zero(); pre.kept_cols.len()], num_original_cols);
        }
        solution.presolve_rows_removed = pre.rows_removed;
        solution.presolve_cols_removed = pre.cols_removed;
        phases.certified = true;
        solution.phases = phases;
        return solution;
    }
    let warm_reduced: Option<Vec<usize>> = warm.map(|w| pre.map_cols(w));

    // `DCA_LP_NO_FLOAT=1` skips the f64 phase entirely (A/B switch: pure exact path
    // with the caller's warm start, same certificates, no float influence at all).
    if std::env::var("DCA_LP_NO_FLOAT").is_ok() {
        let repair_start = Instant::now();
        let mut solution = solve_standard_form_inner::<Rational>(
            &pre.form,
            deadline,
            0.0,
            warm_reduced.as_deref(),
            None,
        );
        phases.repair_time = repair_start.elapsed();
        phases.exact_iterations = solution.iterations;
        phases.lu_updates = solution.phases.lu_updates;
        phases.lu_refactorizations = solution.phases.lu_refactorizations;
        if solution.status == LpStatus::Optimal {
            solution.values = pre.restore(&solution.values, num_original_cols);
        }
        solution.basis = solution.basis.iter().map(|&col| pre.kept_cols[col]).collect();
        solution.presolve_rows_removed = pre.rows_removed;
        solution.presolve_cols_removed = pre.cols_removed;
        phases.certified = true;
        solution.phases = phases;
        return solution;
    }

    // `DCA_LP_NO_ROWGEN=1` is the row-generation A/B switch: the eager path below
    // solves every column up front (the pre-row-generation behavior, bit-identical
    // verdicts by the separation argument in `solve_with_row_generation`).
    let lazy_reduced: Vec<usize> = if std::env::var("DCA_LP_NO_ROWGEN").is_ok() {
        Vec::new()
    } else {
        pre.map_cols(lazy_cols)
    };

    let mut solution = if lazy_reduced.is_empty() {
        let (solution, _) = certified_core(
            &pre.form,
            deadline,
            warm_reduced.as_deref(),
            &mut phases,
            debug,
            false,
            true,
        );
        solution
    } else {
        solve_with_row_generation(
            &pre.form,
            deadline,
            warm_reduced.as_deref(),
            &lazy_reduced,
            &mut phases,
            debug,
        )
    };

    // Map the reduced solution back to the original column space.
    if solution.status == LpStatus::Optimal {
        solution.values = pre.restore(&solution.values, num_original_cols);
    }
    if let Some(bound) = solution.dual_bound.take() {
        // The bound was certified on the presolved problem; presolve only ever
        // fixes eliminated columns to constants, so the original objective differs
        // from the reduced one by exactly Σ c_j·v_j over the fixed columns.
        let offset = pre
            .fixed
            .iter()
            .fold(Rational::zero(), |acc, (col, value)| acc.add(&form.costs[*col].mul(value)));
        solution.dual_bound = Some(bound.add(&offset));
    }
    solution.basis = solution.basis.iter().map(|&col| pre.kept_cols[col]).collect();
    solution.presolve_rows_removed = pre.rows_removed;
    solution.presolve_cols_removed = pre.cols_removed;
    solution.iterations = phases.float_iterations + phases.exact_iterations;
    // Every terminal verdict above came out of exact arithmetic: the certifier, the
    // exact repair, or the exact fallback. (A truncated anytime answer is exactly
    // feasible — its bound is sound — but not a proven optimum.)
    phases.certified = true;
    solution.phases = phases;
    solution
}

/// The float-first / certify / exact-repair pipeline on one (possibly
/// column-restricted) problem.
///
/// `form` is solved as-is — no presolve; the caller already reduced it — and
/// `warm` carries preferred columns in `form`'s own index space. Effort is
/// *accumulated* into `phases` so the row-generation driver can call this once
/// per round and keep a single whole-solve account.
///
/// With `want_dual`, an exact optimal dual vector accompanies an `Optimal`
/// non-truncated solution: taken from the accepted certificate when the
/// certifier concluded the solve, or recovered by one extra certification pass
/// when the answer came out of the exact simplex. `None` alongside `Optimal`
/// then means the deadline expired before the dual could be certified.
fn certified_core(
    form: &StandardForm<Rational>,
    deadline: &Deadline,
    warm: Option<&[usize]>,
    phases: &mut PhaseStats,
    debug: bool,
    want_dual: bool,
    mut use_float: bool,
) -> (RawSolution<Rational>, Option<Vec<Rational>>) {
    let columns = Columns::from_form(form);
    let mut candidate: Vec<usize> = Vec::new();
    let mut result: Option<RawSolution<Rational>> = None;
    let mut dual: Option<Vec<Rational>> = None;
    let mut float_optimal = false;
    // Best exact lower bound salvaged from rejected-but-dual-feasible certification
    // passes; attached to a truncated answer so the caller can report a gap.
    let mut best_lower: Option<Rational> = None;
    if use_float {
        match fault::enter(SolvePhase::LpFloat) {
            Some(FaultKind::Deadline) => deadline.cancel(),
            // Forced numeric rejection: discard the float phase outright; the exact
            // fallback below must still reproduce the fault-free answer.
            Some(FaultKind::Numeric) => use_float = false,
            _ => {}
        }
    }

    // ---- Float phase: solve the f64 image of the problem. --------------------------
    // Skipped (`use_float = false`) by the row-generation driver after its first
    // round: the previous round's optimal basis stays primal feasible when columns
    // are only *added*, so warm-started exact pricing beats a from-scratch f64 solve
    // whose basis would displace that warm start.
    if use_float {
        let float_start = Instant::now();
        let float_form = StandardForm {
            matrix: form
                .matrix
                .iter()
                .map(|row| row.iter().map(Rational::to_f64).collect())
                .collect(),
            rhs: form.rhs.iter().map(Rational::to_f64).collect(),
            costs: form.costs.iter().map(Rational::to_f64).collect(),
            model_columns: form.model_columns.clone(),
        };
        // The float phase only proposes a basis; cap its budget so the exact phases
        // keep most of the wall-clock (they are the sound anytime fallback). The
        // tightened clone shares the cancel flag, so external cancellation still
        // reaches the float simplex.
        let float_deadline = deadline.tightened(deadline.instant().map(|d| {
            let remaining = d.saturating_duration_since(Instant::now());
            Instant::now() + remaining.mul_f64(FLOAT_BUDGET_FRACTION)
        }));
        let perturbation =
            if float_form.matrix.len() >= PERTURB_ROWS_THRESHOLD { PERTURBATION } else { 0.0 };
        let float =
            solve_standard_form_inner(&float_form, &float_deadline, perturbation, warm, None);
        phases.float_time += float_start.elapsed();
        phases.float_iterations += float.iterations;
        if debug {
            eprintln!(
                "[lp] float-first: f64 phase {:?} in {:.2}s ({} pivots, {} rows, {} cols)",
                float.status,
                float_start.elapsed().as_secs_f64(),
                float.iterations,
                form.matrix.len(),
                form.costs.len()
            );
        }
        candidate = float.basis;
        float_optimal = float.status == LpStatus::Optimal && !float.truncated;
    }

    // ---- Certify / repair loop. ----------------------------------------------------
    // Round r: certify the current candidate; on rejection run a pivot-capped exact
    // repair warm-started from it and try again. After the capped rounds the exact
    // simplex runs uncapped (self-certifying).
    if float_optimal {
        for (round, cap) in REPAIR_CAPS.iter().enumerate() {
            let force_reject = match fault::enter(SolvePhase::LpCertify) {
                Some(FaultKind::Deadline) => {
                    deadline.cancel();
                    false
                }
                // Injected numeric failure: pretend certification rejected the
                // candidate; the repair/fallback chain must still land on the
                // fault-free answer (soundness never rests on a single pass).
                Some(FaultKind::Numeric) => true,
                _ => false,
            };
            let certify_start = Instant::now();
            let certified = if force_reject {
                Certified::Rejected { dual_bound: None }
            } else {
                certify_basis(form, &columns, &candidate, deadline)
            };
            phases.certify_time += certify_start.elapsed();
            phases.certify_rounds += 1;
            let certificate = match certified {
                Certified::Accepted(certificate) => Some(certificate),
                Certified::Rejected { dual_bound } => {
                    if let Some(bound) = dual_bound {
                        best_lower = Some(match best_lower.take() {
                            Some(best) if Scalar::lt(&bound, &best) => best,
                            _ => bound,
                        });
                    }
                    None
                }
            };
            if let Some(certificate) = certificate {
                if debug {
                    eprintln!(
                        "[lp] float-first: certified in round {} ({:.3}s certify)",
                        round + 1,
                        phases.certify_time.as_secs_f64()
                    );
                }
                let mut solution = RawSolution::bare(LpStatus::Optimal);
                solution.values = certificate.values;
                solution.basis = certificate.basis;
                dual = Some(certificate.dual);
                result = Some(solution);
                break;
            }
            if debug {
                eprintln!(
                    "[lp] float-first: round {} rejected; exact repair (cap {cap})",
                    round + 1
                );
            }
            // Deadline faults at the repair boundary exercise the real
            // cancellation path; a numeric fault has nothing to reject here.
            if fault::enter(SolvePhase::LpRepair) == Some(FaultKind::Deadline) {
                deadline.cancel();
            }
            let repair_start = Instant::now();
            let repaired = solve_standard_form_inner::<Rational>(
                form,
                deadline,
                0.0,
                Some(&candidate),
                Some(*cap),
            );
            phases.repair_time += repair_start.elapsed();
            phases.exact_iterations += repaired.iterations;
            phases.lu_updates += repaired.phases.lu_updates;
            phases.lu_refactorizations += repaired.phases.lu_refactorizations;
            match repaired.status {
                // The capped exact run converged: its answer is exact and final.
                LpStatus::Optimal | LpStatus::Infeasible | LpStatus::Unbounded => {
                    result = Some(repaired);
                    break;
                }
                // Deadline hit: no time left to keep repairing.
                LpStatus::TimedOut => {
                    result = Some(repaired);
                    break;
                }
                // Cap hit: continue from wherever the repair stopped.
                _ => {
                    if !repaired.basis.is_empty() {
                        candidate = repaired.basis;
                    }
                }
            }
        }
    }

    // ---- Pure exact fallback (uncapped, warm-started from the best basis seen). ----
    let mut solution = match result {
        Some(solution) => solution,
        None => {
            if fault::enter(SolvePhase::LpRepair) == Some(FaultKind::Deadline) {
                deadline.cancel();
            }
            let warm_exact: Option<&[usize]> =
                if !candidate.is_empty() { Some(&candidate) } else { warm };
            let repair_start = Instant::now();
            let exact = solve_standard_form_inner::<Rational>(form, deadline, 0.0, warm_exact, None);
            phases.repair_time += repair_start.elapsed();
            phases.exact_iterations += exact.iterations;
            phases.lu_updates += exact.phases.lu_updates;
            phases.lu_refactorizations += exact.phases.lu_refactorizations;
            if debug {
                eprintln!(
                    "[lp] float-first: exact fallback {:?} in {:.2}s ({} pivots)",
                    exact.status,
                    phases.repair_time.as_secs_f64(),
                    exact.iterations
                );
            }
            exact
        }
    };

    // An optimum produced by the exact simplex (repair or fallback) carries its own
    // terminal dual out of the revised simplex; prefer it — re-deriving the dual via
    // Markowitz can pad a degenerate basis differently and fail to re-certify.
    if dual.is_none() {
        dual = solution.dual.clone();
    }
    // Last resort: certify the basis once more when the caller needs a dual. The
    // pass can only confirm — the exact simplex terminated on this basis — or run
    // out of time.
    if want_dual && dual.is_none() && solution.status == LpStatus::Optimal && !solution.truncated {
        let certify_start = Instant::now();
        let certified = certify_basis(form, &columns, &solution.basis, deadline);
        phases.certify_time += certify_start.elapsed();
        dual = match certified {
            Certified::Accepted(certificate) => Some(certificate.dual),
            Certified::Rejected { .. } => None,
        };
    }
    // A truncated anytime answer carries the best exact lower bound seen, so the
    // caller can bracket the unproven optimum: `dual_bound ≤ optimum ≤ objective`.
    if solution.truncated && solution.dual_bound.is_none() {
        solution.dual_bound = best_lower;
    }
    // Defensive: a solution whose basis failed dual recovery must not silently claim
    // proven optimality to the row-generation driver; the driver downgrades it to an
    // anytime answer (see the `None` dual arm there).
    (solution, dual)
}

/// Delayed column generation over the lazy Handelman-multiplier columns.
///
/// Starts from the active core — every non-lazy column plus any lazy column the
/// warm-start basis names — solves the column-restricted sub-problem with the
/// full float-first pipeline, then *exactly* prices every still-excluded lazy
/// column against the sub-problem's exact dual:
///
/// * `Optimal`: a column with negative exact reduced cost `c_j − y·A_j < 0`
///   could improve the optimum, so it is activated and the solve repeats,
///   warm-started from the previous basis. When none prices negative, exact
///   dual feasibility holds over the *full* column set, so the restricted
///   optimum extended with zeros is a certified optimum of the full problem —
///   the verdict (status and optimal value) is identical to the eager solve's.
/// * `Infeasible`: the exact phase-1 Farkas certificate of the restricted
///   system is re-derived and re-verified ([`phase1_farkas`]); an excluded
///   column pricing `y₁·A_j > 0` could break it, so it is activated and the
///   solve repeats. When none can, the same certificate proves the full system
///   infeasible. If the certificate cannot be recovered in time, every
///   remaining lazy column is activated and the final round degenerates to the
///   eager solve — slower, never wrong.
/// * Anything else (unbounded, timeout, anytime-truncated optimum) is returned
///   as-is: a restricted feasible point is a feasible point of the full
///   problem, so truncated answers keep their sound-upper-bound meaning, and an
///   unbounded restricted problem makes the full problem unbounded a fortiori.
///
/// Every non-terminal round strictly grows the active set, so the loop
/// terminates after at most `lazy.len()` activations.
fn solve_with_row_generation(
    form: &StandardForm<Rational>,
    deadline: &Deadline,
    warm: Option<&[usize]>,
    lazy: &[usize],
    phases: &mut PhaseStats,
    debug: bool,
) -> RawSolution<Rational> {
    let n = form.costs.len();
    let mut is_lazy = vec![false; n];
    for &col in lazy {
        is_lazy[col] = true;
    }
    // Active core: everything that is not lazy, plus warm-start columns — a basis
    // threaded in from a previous escalation rung already names the lazy columns
    // that mattered there, so row-generation state travels across rungs for free.
    let mut active: Vec<bool> = is_lazy.iter().map(|&lazy| !lazy).collect();
    if let Some(warm) = warm {
        for &col in warm {
            active[col] = true;
        }
    }
    phases.products_total = lazy.len();
    let full_columns = Columns::from_form(form);
    let mut warm_full: Option<Vec<usize>> = warm.map(<[usize]>::to_vec);

    let (mut sub, sub_cols, basis_full) = loop {
        phases.separation_rounds += 1;
        // Deadline faults at the separation boundary exercise the real
        // cancellation path; a numeric fault has nothing to reject here.
        if fault::enter(SolvePhase::LpRowGen) == Some(FaultKind::Deadline) {
            deadline.cancel();
        }
        let sub_cols: Vec<usize> = (0..n).filter(|&j| active[j]).collect();
        let mut sub_of = vec![usize::MAX; n];
        for (sub_j, &j) in sub_cols.iter().enumerate() {
            sub_of[j] = sub_j;
        }
        // All rows are kept, so the sub-problem's duals are directly usable for
        // pricing full-form columns. `model_columns` is presolve metadata and the
        // sub-form never passes through presolve, so it stays empty.
        let sub_form = StandardForm {
            matrix: form
                .matrix
                .iter()
                .map(|row| sub_cols.iter().map(|&j| row[j].clone()).collect())
                .collect(),
            rhs: form.rhs.clone(),
            costs: sub_cols.iter().map(|&j| form.costs[j].clone()).collect(),
            model_columns: Vec::new(),
        };
        let warm_sub: Option<Vec<usize>> = warm_full.as_ref().map(|warm| {
            warm.iter().filter(|&&j| sub_of[j] != usize::MAX).map(|&j| sub_of[j]).collect()
        });
        if debug {
            eprintln!(
                "[lp] rowgen round {}: {}/{} columns active",
                phases.separation_rounds,
                sub_cols.len(),
                n
            );
        }
        // The f64 phase only pays off on the first round: later rounds re-solve the
        // same rows with a strictly larger column set, where the previous optimal
        // basis (primal feasible by construction) makes warm-started exact pricing
        // the fastest path to the new optimum.
        let use_float = phases.separation_rounds == 1;
        let (mut sub, dual) = certified_core(
            &sub_form,
            deadline,
            warm_sub.as_deref(),
            phases,
            debug,
            true,
            use_float,
        );
        let basis_full: Vec<usize> = sub.basis.iter().map(|&j| sub_cols[j]).collect();
        warm_full = Some(basis_full.clone());

        let excluded = || (0..n).filter(|&j| is_lazy[j] && !active[j]);
        match sub.status {
            LpStatus::Optimal if !sub.truncated => {
                let Some(dual) = dual else {
                    // Deadline before the dual could be certified: the restricted
                    // optimum is still exactly feasible for the full problem, so
                    // report it with anytime semantics rather than claiming a
                    // proven optimum the separation check never confirmed.
                    if debug {
                        eprintln!("[lp] rowgen: no dual for restricted optimum; anytime");
                    }
                    sub.truncated = true;
                    break (sub, sub_cols, basis_full);
                };
                let violated: Vec<usize> = excluded()
                    .filter(|&j| form.costs[j].sub(&full_columns.dot(&dual, j)).is_negative())
                    .collect();
                if violated.is_empty() {
                    if debug {
                        eprintln!("[lp] rowgen: no excluded column prices negative; optimal");
                    }
                    break (sub, sub_cols, basis_full);
                }
                if debug {
                    eprintln!("[lp] rowgen: activating {} violated columns", violated.len());
                }
                for j in violated {
                    active[j] = true;
                }
            }
            LpStatus::Infeasible => {
                let sub_columns = Columns::from_form(&sub_form);
                let certify_start = Instant::now();
                let farkas = phase1_farkas(&sub_form, &sub_columns, &sub.basis, deadline);
                phases.certify_time += certify_start.elapsed();
                match farkas {
                    Some(farkas) => {
                        // Phase-1 structural costs are 0, so an excluded column
                        // prices `−y₁·A_j`: only `y₁·A_j > 0` could pull the
                        // artificial sum below its positive optimum.
                        let violated: Vec<usize> = excluded()
                            .filter(|&j| full_columns.dot(&farkas, j).is_positive())
                            .collect();
                        if violated.is_empty() {
                            break (sub, sub_cols, basis_full);
                        }
                        if debug {
                            eprintln!(
                                "[lp] rowgen: {} columns may break the Farkas certificate",
                                violated.len()
                            );
                        }
                        for j in violated {
                            active[j] = true;
                        }
                    }
                    None if deadline.expired() => {
                        sub.status = LpStatus::TimedOut;
                        sub.truncated = true;
                        break (sub, sub_cols, basis_full);
                    }
                    None => {
                        // The certificate could not be re-derived from the final
                        // basis (Markowitz re-pivoting landed elsewhere). Activate
                        // everything: the next round solves the full column set,
                        // whose verdict needs no separation argument.
                        if debug {
                            eprintln!(
                                "[lp] rowgen: Farkas recovery failed; falling back to eager"
                            );
                        }
                        if excluded().next().is_none() {
                            break (sub, sub_cols, basis_full);
                        }
                        for j in 0..n {
                            if is_lazy[j] {
                                active[j] = true;
                            }
                        }
                    }
                }
            }
            _ => break (sub, sub_cols, basis_full),
        }
    };

    phases.products_generated = lazy.iter().filter(|&&j| active[j]).count();
    // A dual bound certified against the *restricted* column set only bounds the
    // restricted optimum (which is ≥ the full optimum), so it survives only when
    // every lazy column ended up active.
    if sub.dual_bound.is_some() && (0..n).any(|j| is_lazy[j] && !active[j]) {
        sub.dual_bound = None;
    }
    // Expand the restricted answer to the full column space: excluded columns sit
    // at zero (they are nonbasic by construction).
    if sub.status == LpStatus::Optimal {
        let mut values = vec![Rational::zero(); n];
        for (sub_j, value) in sub.values.iter().enumerate() {
            values[sub_cols[sub_j]] = value.clone();
        }
        sub.values = values;
    }
    sub.basis = basis_full;
    sub
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    fn accepted(certified: Certified) -> Option<Certificate> {
        match certified {
            Certified::Accepted(certificate) => Some(certificate),
            Certified::Rejected { .. } => None,
        }
    }

    /// minimize -x - y  s.t.  x + y + s = 4: optimum -4 at x + y = 4.
    #[test]
    fn float_first_certifies_a_simple_optimum() {
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(1, 1), r(1, 1)]],
            rhs: vec![r(4, 1)],
            costs: vec![r(-1, 1), r(-1, 1), r(0, 1)],
            model_columns: Vec::new(),
        };
        let solution = solve_float_first(&form, &Deadline::unlimited(), None, &[]);
        assert_eq!(solution.status, LpStatus::Optimal);
        assert!(solution.phases.certified);
        assert!(solution.phases.certify_rounds >= 1, "the certifier must have run");
        assert_eq!(solution.phases.exact_iterations, 0, "no exact repair needed");
        let total = solution.values[0].clone() + solution.values[1].clone();
        assert_eq!(total, r(4, 1));
    }

    #[test]
    fn float_first_agrees_with_exact_on_infeasible() {
        let form = StandardForm {
            matrix: vec![vec![r(1, 1)], vec![r(1, 1)]],
            rhs: vec![r(2, 1), r(3, 1)],
            costs: vec![r(0, 1)],
            model_columns: Vec::new(),
        };
        let solution = solve_float_first(&form, &Deadline::unlimited(), None, &[]);
        assert_eq!(solution.status, LpStatus::Infeasible);
    }

    #[test]
    fn certifier_rejects_a_suboptimal_basis() {
        // minimize x1 with x1 + x2 = 1: optimum picks x2 basic. The basis {x1} is
        // feasible but not optimal, so certification must fail on it.
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(1, 1)]],
            rhs: vec![r(1, 1)],
            costs: vec![r(1, 1), r(0, 1)],
            model_columns: Vec::new(),
        };
        let columns = Columns::from_form(&form);
        assert!(
            accepted(certify_basis(&form, &columns, &[0], &Deadline::unlimited())).is_none(),
            "x1 basic is not optimal"
        );
        let certificate = accepted(certify_basis(&form, &columns, &[1], &Deadline::unlimited()))
            .expect("x2 basic is optimal");
        assert_eq!(certificate.values, vec![r(0, 1), r(1, 1)]);
    }

    #[test]
    fn certifier_rejects_infeasible_bases_and_nonzero_artificials() {
        // x1 - x2 = 1 with basis {x2}: x2 = -1 < 0 → infeasible basis.
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(-1, 1)]],
            rhs: vec![r(1, 1)],
            costs: vec![r(0, 1), r(0, 1)],
            model_columns: Vec::new(),
        };
        let columns = Columns::from_form(&form);
        assert!(accepted(certify_basis(&form, &columns, &[1], &Deadline::unlimited())).is_none());
        // Empty candidate: the row is covered by an artificial that must be 0 but
        // solves to 1 → reject.
        assert!(accepted(certify_basis(&form, &columns, &[], &Deadline::unlimited())).is_none());
        // With rhs = 0 the all-artificial basis is exactly feasible and optimal.
        let zero_form = StandardForm { rhs: vec![r(0, 1)], ..form };
        let zero_columns = Columns::from_form(&zero_form);
        assert!(
            accepted(certify_basis(&zero_form, &zero_columns, &[], &Deadline::unlimited()))
                .is_some()
        );
    }

    /// minimize 2x1 + x2  s.t.  x1 - x2 = 1. Basis {x2} solves to x2 = -1: primal
    /// infeasible — but its dual y = -1 prices x1 at 2 - (-1)(1) = 3 ≥ 0, so the
    /// rejection must salvage the weak-duality bound y·b = -1 (≤ the optimum 2).
    #[test]
    fn rejected_dual_feasible_basis_yields_an_exact_lower_bound() {
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(-1, 1)]],
            rhs: vec![r(1, 1)],
            costs: vec![r(2, 1), r(1, 1)],
            model_columns: Vec::new(),
        };
        let columns = Columns::from_form(&form);
        match certify_basis(&form, &columns, &[1], &Deadline::unlimited()) {
            Certified::Rejected { dual_bound: Some(bound) } => assert_eq!(bound, r(-1, 1)),
            Certified::Rejected { dual_bound: None } => panic!("bound must be salvaged"),
            Certified::Accepted(_) => panic!("x2 basic is primal infeasible"),
        }
    }
}
