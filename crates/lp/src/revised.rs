//! Sparse revised simplex with a product-form (eta-file) basis factorization.
//!
//! The dense tableau simplex this crate started with drags a full `m × (n + m)` matrix
//! through every pivot — `O(m·n)` per iteration even when the constraint matrix is 99%
//! zeros, which the Handelman coefficient-matching systems are. The revised method
//! keeps the constraint matrix `A` untouched in sparse column-major form and maintains
//! only a factorization of the current basis `B`:
//!
//! * `B⁻¹` is represented as a product of *eta matrices*, one appended per pivot
//!   ([`Eta`]); applying it to a vector (`FTRAN`) or a row vector (`BTRAN`) costs the
//!   number of stored non-zeros, not `m²`;
//! * every [`REINVERT_EVERY`] pivots (and at every verdict for the `f64` backend) the
//!   eta file is rebuilt from scratch against the untouched columns
//!   ([`Factorization::reinvert`]), clearing accumulated round-off the way the dense
//!   code's Gauss–Jordan refactorization did — but at sparse cost;
//! * `f64` pricing recomputes reduced costs from a fresh `BTRAN` every iteration, so
//!   there is no incrementally-maintained (and drifting) reduced-cost row at all;
//! * the *exact* backend, which cannot drift, instead maintains the dual `y = c_B B⁻¹`
//!   incrementally across pivots (`y' = y + (d̄_q/α_r)·ρ_r`, one sparse unit-vector
//!   `BTRAN` per pivot instead of a dense one per pricing pass) and memoizes each
//!   column's reduced-cost verdict until a dual row in its support actually changes —
//!   both updates are exact rational arithmetic, so the optimality proof is untouched.
//!
//! The same machinery provides **warm starts**: a caller-supplied set of preferred
//! columns is run through the reinversion routine first (columns that prove dependent
//! are skipped), artificial columns cover whatever rows remain, and phase 1 begins from
//! that basis instead of the all-artificial one. When the previous basis is close to
//! optimal for the new problem — as it is between the escalation ladder's consecutive
//! `(degree, tier)` rungs, whose constraint systems share most of their structure —
//! phase 1 collapses to a handful of pivots.

use std::time::Instant;

use crate::deadline::Deadline;
use crate::problem::LpStatus;
use crate::scalar::{abs, Scalar};
use crate::simplex::StandardForm;

/// Pivot acceptance threshold for the `f64` backend: candidate pivots below this
/// magnitude are rejected in the ratio test and during reinversion (a tiny pivot
/// amplifies every subsequent FTRAN/BTRAN). Matches the dense tableau's effective
/// positivity tolerance.
const PIVOT_EPS: f64 = 1e-8;

/// Coarse entering threshold for the `f64` backend: a column prices in when its
/// reduced cost is below `-COARSE_PRICING_EPS`. Matches the dense tableau's
/// tolerance; entering columns below it mid-run mostly buys degenerate churn.
const COARSE_PRICING_EPS: f64 = 1e-8;

/// Fine entering threshold, used only in phase 2 once the coarse tolerance sees no
/// improving column on a freshly reinverted factorization. Reduced costs come from a
/// fresh BTRAN every iteration — there is no incrementally-maintained row to drift —
/// and on degenerate systems a reduced cost of a few 1e-9 can still be worth a large
/// objective step (observed on the Fig. 1 `join` LP, where accepting a −9.8e-9
/// reduced cost as "non-negative" left the threshold 612 above the true optimum
/// 10000). The fine sweep runs at the very end, so it mops up those columns without
/// paying their churn mid-run.
const FINE_PRICING_EPS: f64 = 1e-10;

/// Eta entries with magnitude below this are dropped when the eta is stored (`f64`
/// only); keeping them would only grow the file with numerical dust.
const DROP_EPS: f64 = 1e-12;

/// Rebuild the factorization from scratch after this many appended etas (`f64`).
/// Degenerate pivot chains amplify round-off through the eta file; a shortish period
/// keeps the factorization honest at a bounded (~sparse) rebuild cost.
const REINVERT_EVERY: usize = 64;

// Reinversion for the exact backend is **growth-driven**, not periodic. Exact
// arithmetic accumulates no round-off — a rebuild only exists to keep the eta file
// (and thus FTRAN/BTRAN cost) from growing without bound — so each pivot is absorbed
// as a rank-1 eta *update* of the rational factorization and a full Markowitz
// refactorization runs only when the accumulated eta fill blows past the policy in
// [`crate::lu::should_refactorize`]. On the degree-3 `nested` repair (41.7k exact
// pivots) the previous fixed every-256-pivots cadence spent most of its ~212 s in
// ~160 full rational refactorizations at ≥1 s each; the growth policy collapses
// those to a handful while the per-pivot eta append stays at sparse cost.

/// One eta matrix: the identity with column `pivot` replaced by the stored vector.
#[derive(Debug, Clone)]
pub(crate) struct Eta<S> {
    pub(crate) pivot: usize,
    pub(crate) pivot_value: S,
    /// Off-pivot non-zero entries `(row, value)`.
    pub(crate) others: Vec<(usize, S)>,
}

impl<S: Scalar> Eta<S> {
    /// Traversal cost of this eta in machine-word units: its non-zero count for
    /// fixed-width scalars, bit-length-scaled for rationals ([`Scalar::complexity`]).
    /// Rational eta entries can balloon to thousands of bits each, so counting
    /// plain non-zeros would drastically under-report how expensive FTRAN/BTRAN
    /// through the file has become.
    pub(crate) fn weight(&self) -> usize {
        self.pivot_value.complexity()
            + self.others.iter().map(|(_, value)| value.complexity()).sum::<usize>()
    }
}

/// The sparse constraint matrix plus the virtual artificial identity columns.
pub(crate) struct Columns<S> {
    /// Structural columns: `cols[j]` is the list of `(row, value)` non-zeros.
    pub(crate) cols: Vec<Vec<(usize, S)>>,
    /// Number of rows (artificial column `n + r` is the unit vector `e_r`).
    pub(crate) rows: usize,
}

impl<S: Scalar> Columns<S> {
    /// Builds the column-major form of a standard-form constraint matrix.
    pub(crate) fn from_form(form: &StandardForm<S>) -> Columns<S> {
        Columns {
            cols: (0..form.costs.len())
                .map(|j| {
                    form.matrix
                        .iter()
                        .enumerate()
                        .filter(|(_, row)| !row[j].is_exactly_zero())
                        .map(|(i, row)| (i, row[j].clone()))
                        .collect()
                })
                .collect(),
            rows: form.matrix.len(),
        }
    }

    pub(crate) fn scatter(&self, col: usize, out: &mut [S]) {
        for value in out.iter_mut() {
            *value = S::zero();
        }
        if col < self.cols.len() {
            for (row, value) in &self.cols[col] {
                out[*row] = value.clone();
            }
        } else {
            out[col - self.cols.len()] = S::one();
        }
    }

    /// Sparse dot product of a dense row vector with a column.
    pub(crate) fn dot(&self, y: &[S], col: usize) -> S {
        if col < self.cols.len() {
            let mut acc = S::zero();
            for (row, value) in &self.cols[col] {
                if !y[*row].is_exactly_zero() {
                    acc = acc.add(&y[*row].mul(value));
                }
            }
            acc
        } else {
            y[col - self.cols.len()].clone()
        }
    }
}

/// The eta-file basis factorization.
pub(crate) struct Factorization<S> {
    pub(crate) etas: Vec<Eta<S>>,
    /// Basic column per row position.
    pub(crate) basis: Vec<usize>,
}

impl<S: Scalar> Factorization<S> {
    /// `x := B⁻¹ x` (forward transformation).
    pub(crate) fn ftran(&self, x: &mut [S]) {
        for eta in &self.etas {
            if x[eta.pivot].is_exactly_zero() {
                continue;
            }
            let t = x[eta.pivot].div(&eta.pivot_value);
            x[eta.pivot] = t.clone();
            for (row, value) in &eta.others {
                x[*row] = x[*row].sub(&value.mul(&t));
            }
        }
    }

    /// `y := y B⁻¹` (backward transformation, applied to a row vector).
    ///
    /// The zero fast path matters for *sparse* inputs: the incremental dual update
    /// BTRANs a unit vector `e_r` per pivot, and on most etas every read position is
    /// still zero — skipping the rational division there keeps that BTRAN at
    /// near-fill cost instead of one division per eta.
    pub(crate) fn btran(&self, y: &mut [S]) {
        for eta in self.etas.iter().rev() {
            let mut s = y[eta.pivot].clone();
            for (row, value) in &eta.others {
                if !y[*row].is_exactly_zero() {
                    s = s.sub(&y[*row].mul(value));
                }
            }
            y[eta.pivot] = if s.is_exactly_zero() { s } else { s.div(&eta.pivot_value) };
        }
    }

    /// Total *weighted* size of the eta file (pivot entries included): non-zeros
    /// for fixed-width scalars, bit-length-scaled for rationals. This is the
    /// quantity every FTRAN/BTRAN traverses, i.e. the incremental-update cost the
    /// exact reinversion policy monitors.
    pub(crate) fn eta_nnz(&self) -> usize {
        self.etas.iter().map(Eta::weight).sum()
    }

    /// Appends the eta for pivoting column data `d = B⁻¹ A_q` on row `pivot`.
    pub(crate) fn push_eta(&mut self, d: &[S], pivot: usize) {
        let mut others = Vec::new();
        for (row, value) in d.iter().enumerate() {
            if row == pivot || value.is_exactly_zero() {
                continue;
            }
            if !S::IS_EXACT && value.to_f64().abs() < DROP_EPS {
                continue;
            }
            others.push((row, value.clone()));
        }
        self.etas.push(Eta { pivot, pivot_value: d[pivot].clone(), others });
    }

    /// Rebuilds the eta file from scratch for a preferred column order.
    ///
    /// Columns are processed in the given order; each is transformed through the etas
    /// accumulated so far and pivots on the still-unassigned row where it is largest
    /// — columns whose best available pivot is below `min_pivot` (they are dependent,
    /// or near-dependent, on the ones already processed) are skipped. Rows left
    /// unassigned afterwards are covered by artificial columns, so the routine always
    /// produces a complete basis. Returns the rows that fell back to artificials and
    /// the element-growth factor of the rebuild (max transformed magnitude observed);
    /// callers treat excessive growth as a sign the preferred basis is too
    /// ill-conditioned to factorize at this tolerance and retry stricter.
    fn reinvert(
        columns: &Columns<S>,
        preferred: &[usize],
        min_pivot: f64,
    ) -> (Factorization<S>, Vec<usize>, f64) {
        let m = columns.rows;
        let n = columns.cols.len();
        let mut factor = Factorization { etas: Vec::new(), basis: vec![usize::MAX; m] };
        let mut assigned = vec![false; m];
        let mut work = vec![S::zero(); m];
        let mut placed = vec![false; n + m];
        let mut growth = 0.0f64;
        let accept = |factor: &mut Factorization<S>,
                          assigned: &mut Vec<bool>,
                          growth: &mut f64,
                          work: &[S],
                          col: usize,
                          floor: f64|
         -> bool {
            let mut best: Option<usize> = None;
            for (row, value) in work.iter().enumerate() {
                if assigned[row] || value.is_exactly_zero() {
                    continue;
                }
                if !S::IS_EXACT {
                    let magnitude = value.to_f64().abs();
                    if magnitude > *growth {
                        *growth = magnitude;
                    }
                }
                let better = match best {
                    None => true,
                    Some(b) => abs(&work[b]).lt(&abs(value)),
                };
                if better {
                    best = Some(row);
                }
            }
            let Some(row) = best else { return false };
            if !S::IS_EXACT && work[row].to_f64().abs() < floor {
                return false;
            }
            factor.push_eta(work, row);
            factor.basis[row] = col;
            assigned[row] = true;
            true
        };
        for &col in preferred {
            if col >= n + m || placed[col] {
                continue;
            }
            columns.scatter(col, &mut work);
            factor.ftran(&mut work);
            if accept(&mut factor, &mut assigned, &mut growth, &work, col, min_pivot) {
                placed[col] = true;
            }
        }
        // Cover the remaining rows with artificial columns. Each artificial goes
        // through the same transform-and-pivot acceptance as a regular column (its
        // best pivot row is not necessarily its own row once etas are in play). The
        // first sweep respects the pivot floor; the second drops it, because a
        // complete factorization — even a poorly conditioned one — beats an
        // incomplete basis, and the growth report tells the caller to distrust it.
        let mut fallback = Vec::new();
        for floor in [min_pivot, 0.0] {
            if !assigned.iter().any(|&a| !a) {
                break;
            }
            for row in 0..m {
                if assigned.iter().all(|&a| a) {
                    break;
                }
                let col = n + row;
                if placed[col] {
                    continue;
                }
                columns.scatter(col, &mut work);
                factor.ftran(&mut work);
                if accept(&mut factor, &mut assigned, &mut growth, &work, col, floor) {
                    placed[col] = true;
                    fallback.push(row);
                }
            }
        }
        (factor, fallback, growth)
    }
}

/// Builds a basis factorization for a preferred column set, choosing the strategy by
/// backend: the exact backend uses the Markowitz-ordered sparse LU (fill-in is the
/// entire cost of rational arithmetic — a fill-oblivious rebuild is what used to make
/// warm-started exact solves *slower* than cold ones), while `f64` keeps the
/// magnitude-pivoted reinversion (numerical stability is what matters there).
fn build_factorization<S: Scalar>(
    columns: &Columns<S>,
    preferred: &[usize],
    min_pivot: f64,
) -> (Factorization<S>, Vec<usize>, f64) {
    if S::IS_EXACT {
        let lu = crate::lu::factorize_markowitz(columns, preferred);
        (lu.factor, lu.artificial_rows, 0.0)
    } else {
        Factorization::reinvert(columns, preferred, min_pivot)
    }
}

/// The result of a revised-simplex run.
pub(crate) struct RevisedOutcome<S> {
    pub status: LpStatus,
    /// Values of the structural columns (empty unless `Optimal`).
    pub values: Vec<S>,
    /// Basic structural columns at termination (artificials excluded); meaningful for
    /// any terminal status — an infeasible run's final basis still warm-starts the
    /// next, larger problem.
    pub basis: Vec<usize>,
    /// Simplex iterations across both phases.
    pub iterations: usize,
    /// `true` when the deadline expired during phase 2 and `values` is the last
    /// feasible iterate rather than the proven optimum (an *anytime* answer: every
    /// phase-2 vertex satisfies all original constraints, so the objective value is a
    /// sound — merely loose — bound).
    pub truncated: bool,
    /// Exact pivots absorbed as incremental rank-1 eta updates of the rational
    /// factorization (exact backend only; the `f64` backend reports 0 so the
    /// telemetry attributes incremental-update work unambiguously).
    pub lu_updates: usize,
    /// Full Markowitz refactorizations performed mid-run by the exact backend
    /// (exact backend only, for the same attribution reason).
    pub lu_refactorizations: usize,
    /// The terminal dual `y = c_B B⁻¹` of a proven exact optimum (exact backend,
    /// non-truncated `Optimal` only): computed with one BTRAN over the final
    /// factorization, with artificial basis positions priced at cost zero.
    pub dual: Option<Vec<S>>,
}

/// Solves a standard-form problem (`min c·y`, `Ay = b`, `y ≥ 0`, `b ≥ 0`) with the
/// two-phase revised simplex.
///
/// `warm` seeds the initial basis with preferred structural columns (see
/// [`Factorization::reinvert`]); `phase1_noise_floor` is the `f64` backend's tolerance
/// for accepting a slightly-positive phase-1 optimum as feasible (the caller accounts
/// for deliberate right-hand-side perturbations there).
#[cfg(test)]
pub(crate) fn solve_revised<S: Scalar>(
    form: &StandardForm<S>,
    deadline: &Deadline,
    warm: Option<&[usize]>,
    phase1_noise_floor: f64,
) -> RevisedOutcome<S> {
    solve_revised_capped(form, deadline, warm, phase1_noise_floor, None)
}

/// Like [`solve_revised`], with an optional externally-imposed pivot cap per phase.
///
/// The float-first driver's exact *repair* rounds use the cap to bound how long a
/// single round may pivot before its basis is re-certified; a capped run that stops
/// early reports [`LpStatus::IterationLimit`] with its final basis intact, which the
/// next round resumes from.
pub(crate) fn solve_revised_capped<S: Scalar>(
    form: &StandardForm<S>,
    deadline: &Deadline,
    warm: Option<&[usize]>,
    phase1_noise_floor: f64,
    iter_cap: Option<usize>,
) -> RevisedOutcome<S> {
    let m = form.matrix.len();
    let n = form.costs.len();
    let columns = Columns::from_form(form);

    let mut state = State::new(&columns, form, warm);
    let max_iters = iter_cap.unwrap_or(200 * (m + n) + 2000);
    let debug = std::env::var("DCA_LP_DEBUG").is_ok();

    // Phase 1: minimize the sum of the artificial values.
    let needs_phase1 = state
        .factor
        .basis
        .iter()
        .zip(&state.x_basic)
        .any(|(&col, value)| col >= n && value.is_positive());
    if needs_phase1 {
        let phase1_start = Instant::now();
        let status = state.optimize(Phase::One, max_iters, deadline);
        if debug {
            eprintln!(
                "[lp] revised phase1: {:?} in {:.2}s ({} rows, {} cols, {} iters)",
                status,
                phase1_start.elapsed().as_secs_f64(),
                m,
                n,
                state.iterations
            );
        }
        match status {
            LpStatus::Optimal => {}
            // Phase 1's objective is bounded below by zero, so an `Unbounded` verdict
            // can only be numerical noise; report non-convergence instead of letting a
            // bogus verdict masquerade as a definitive answer (the dense predecessor
            // fell through to the infeasibility check here, which is exactly how the
            // `SimpleSingle2` run burned 80 s and then reported a wrong verdict).
            LpStatus::Unbounded => {
                return state.outcome(LpStatus::IterationLimit, n);
            }
            other => return state.outcome(other, n),
        }
        let infeasibility: f64 = state
            .factor
            .basis
            .iter()
            .zip(&state.x_basic)
            .filter(|(&col, _)| col >= n)
            .map(|(_, value)| value.to_f64().max(0.0))
            .sum();
        let infeasible = if S::IS_EXACT {
            infeasibility > 0.0
        } else {
            infeasibility > phase1_noise_floor
        };
        if infeasible {
            if debug {
                eprintln!("[lp] revised phase1 positive: {infeasibility:e} (floor {phase1_noise_floor:e})");
            }
            return state.outcome(LpStatus::Infeasible, n);
        }
    }

    // Phase 2: original costs; artificials stay out of the entering pool.
    let phase2_start = Instant::now();
    let mut status = state.optimize(Phase::Two, max_iters, deadline);
    // Anytime semantics: a deadline hit during phase 2 leaves a primal-feasible
    // vertex in hand — phase 2 never leaves the feasible region — whose objective is
    // a sound upper bound on the optimum. Returning it (marked `truncated`) beats
    // discarding the whole solve as a timeout; the caller's feasibility re-check
    // still validates the solution against the original constraints.
    let mut truncated = false;
    let anytime_feasible = if S::IS_EXACT {
        // Exact iterates are exactly feasible by construction.
        !state.x_basic.iter().any(Scalar::is_negative)
    } else {
        !state.x_basic.iter().any(|v| v.to_f64() < -1e-6)
    };
    if status == LpStatus::TimedOut && anytime_feasible {
        status = LpStatus::Optimal;
        truncated = true;
        for value in &mut state.x_basic {
            if value.is_negative() {
                *value = S::zero();
            }
        }
    }
    if status == LpStatus::Optimal {
        // A basic artificial can drift away from zero during phase-2 pivots (its
        // phase-2 cost is zero, so nothing prices it back down); a solution with a
        // materially non-zero artificial does not satisfy the *original* equalities,
        // so it must not be reported as an optimum.
        let residual: f64 = state
            .factor
            .basis
            .iter()
            .zip(&state.x_basic)
            .filter(|(&col, _)| col >= n)
            .map(|(_, value)| value.to_f64().abs())
            .sum();
        if residual > phase1_noise_floor.max(1e-7) {
            status = LpStatus::IterationLimit;
        }
    }
    if debug {
        eprintln!(
            "[lp] revised phase2: {:?}{} in {:.2}s ({} iters total, {} eta updates, \
             {} refactorizations, {} sweeps, {} queue-served, {} degenerate; \
             btran {:.2}s, reinvert {:.2}s, sweep {:.2}s)",
            status,
            if truncated { " (anytime-truncated)" } else { "" },
            phase2_start.elapsed().as_secs_f64(),
            state.iterations,
            state.lu_updates,
            state.lu_refactorizations,
            state.pricing_sweeps,
            state.queue_served,
            state.degenerate_pivots,
            state.btran_time.as_secs_f64(),
            state.reinvert_time.as_secs_f64(),
            state.sweep_time.as_secs_f64()
        );
    }
    let mut outcome = state.outcome(status, n);
    outcome.truncated = truncated;
    // A proven exact optimum carries its dual out: the row-generation driver prices
    // excluded columns against it directly, skipping a Markowitz re-derivation that
    // could land on a different (uncertifiable) padding of a degenerate basis.
    if S::IS_EXACT && status == LpStatus::Optimal && !truncated {
        let mut y = vec![S::zero(); m];
        for (pos, value) in y.iter_mut().enumerate() {
            let col = state.factor.basis[pos];
            if col < n {
                *value = form.costs[col].clone();
            }
        }
        state.factor.btran(&mut y);
        outcome.dual = Some(y);
    }
    outcome
}

enum Phase {
    One,
    Two,
}

struct State<'a, S> {
    columns: &'a Columns<S>,
    form: &'a StandardForm<S>,
    factor: Factorization<S>,
    /// Values of the basic variables, by row position.
    x_basic: Vec<S>,
    in_basis: Vec<bool>,
    iterations: usize,
    etas_since_reinvert: usize,
    /// Weighted eta-file size appended since the last rebuild (non-zeros scaled by
    /// rational bit length, see [`Eta::weight`]) — the incremental cost the exact
    /// reinversion policy weighs against `base_fill`.
    eta_nnz_since_reinvert: usize,
    /// Weighted eta-file size right after the last rebuild (the Markowitz fill of
    /// the basis itself), the baseline the growth policy compares against.
    base_fill: usize,
    /// Exact pivots absorbed as eta updates (see [`RevisedOutcome::lu_updates`]).
    lu_updates: usize,
    /// Mid-run full refactorizations (see [`RevisedOutcome::lu_refactorizations`]).
    lu_refactorizations: usize,
    /// Full pricing sweeps over all columns (exact backend; each is `O(n · nnz)` in
    /// rational arithmetic — the dominant per-pivot cost when the candidate queue
    /// starves on degenerate streaks).
    pricing_sweeps: usize,
    /// Pivots whose entering column came straight from the candidate queue.
    queue_served: usize,
    /// Zero-step (degenerate) pivots.
    degenerate_pivots: usize,
    /// Exact backend: time in the per-pivot pricing BTRAN (`y = c_B B⁻¹`).
    btran_time: std::time::Duration,
    /// Exact backend: time in mid-run Markowitz refactorizations.
    reinvert_time: std::time::Duration,
    /// Exact backend: time in pricing sweeps (prescreen + exact verification).
    sweep_time: std::time::Duration,
    /// `true` when the last reinversion had to replace a (near-)dependent basis
    /// column with an artificial — the factorization then describes a *different*
    /// basis than the pivot sequence built, so verdicts are suspect.
    degraded: bool,
}

impl<'a, S: Scalar> State<'a, S> {
    fn new(columns: &'a Columns<S>, form: &'a StandardForm<S>, warm: Option<&[usize]>) -> Self {
        let m = columns.rows;
        let n = columns.cols.len();
        let build = |preferred: &[usize]| -> (Factorization<S>, Vec<S>) {
            let (factor, _, _) = build_factorization(columns, preferred, PIVOT_EPS);
            let mut x = form.rhs.clone();
            factor.ftran(&mut x);
            (factor, x)
        };
        let (factor, x_basic) = match warm {
            Some(preferred) if !preferred.is_empty() => {
                let (factor, x) = build(preferred);
                // A crash basis is only usable if it is primal feasible; otherwise the
                // all-artificial start (trivially feasible, since b ≥ 0) is safer than
                // running a composite phase 1.
                if x.iter().any(Scalar::is_negative) {
                    build(&[])
                } else {
                    (factor, x)
                }
            }
            _ => build(&[]),
        };
        let mut in_basis = vec![false; n + m];
        for &col in &factor.basis {
            in_basis[col] = true;
        }
        let base_fill = factor.eta_nnz();
        State {
            columns,
            form,
            factor,
            x_basic,
            in_basis,
            iterations: 0,
            etas_since_reinvert: 0,
            eta_nnz_since_reinvert: 0,
            base_fill,
            lu_updates: 0,
            lu_refactorizations: 0,
            pricing_sweeps: 0,
            queue_served: 0,
            degenerate_pivots: 0,
            btran_time: std::time::Duration::ZERO,
            reinvert_time: std::time::Duration::ZERO,
            sweep_time: std::time::Duration::ZERO,
            degraded: false,
        }
    }

    fn cost(&self, phase: &Phase, col: usize) -> S {
        let n = self.columns.cols.len();
        match phase {
            Phase::One => {
                if col >= n {
                    S::one()
                } else {
                    S::zero()
                }
            }
            Phase::Two => {
                if col >= n {
                    S::zero()
                } else {
                    self.form.costs[col].clone()
                }
            }
        }
    }

    /// Rebuilds the factorization for the current basis and refreshes `x_basic`.
    ///
    /// When the rebuild shows excessive element growth — the tell-tale of a
    /// near-singular basis, whose factorization would poison every subsequent
    /// FTRAN/BTRAN with astronomically scaled entries — it is retried with a much
    /// stricter pivot-acceptance threshold: the near-dependent columns drop out,
    /// artificials take their rows, and the simplex re-drives them out along a
    /// better-conditioned path.
    fn reinvert(&mut self) {
        const GROWTH_LIMIT: f64 = 1e8;
        let preferred = self.factor.basis.clone();
        let (mut factor, mut fallback, growth) =
            build_factorization(self.columns, &preferred, PIVOT_EPS);
        if !S::IS_EXACT && growth > GROWTH_LIMIT {
            if std::env::var("DCA_LP_DEBUG").is_ok() {
                eprintln!("[lp] reinvert growth {growth:e}; retrying with strict pivots");
            }
            let strict = Factorization::reinvert(self.columns, &preferred, 1e-4);
            factor = strict.0;
            fallback = strict.1;
        }
        let n = self.columns.cols.len();
        self.factor = factor;
        self.in_basis = vec![false; n + self.columns.rows];
        for &col in &self.factor.basis {
            self.in_basis[col] = true;
        }
        if !fallback.is_empty() && std::env::var("DCA_LP_DEBUG").is_ok() {
            eprintln!("[lp] reinvert degraded: {} rows fell back to artificials", fallback.len());
        }
        self.degraded = !fallback.is_empty();
        self.x_basic = self.form.rhs.clone();
        self.factor.ftran(&mut self.x_basic);
        self.etas_since_reinvert = 0;
        self.eta_nnz_since_reinvert = 0;
        self.base_fill = self.factor.eta_nnz();
        if S::IS_EXACT {
            self.lu_refactorizations += 1;
        }
    }

    fn optimize(&mut self, phase: Phase, max_iters: usize, deadline: &Deadline) -> LpStatus {
        const DEADLINE_EVERY: usize = 64;
        /// How many verdict-time reinversion-and-recheck passes are allowed before a
        /// floating-point verdict is accepted as-is.
        const MAX_CONFIRMS: usize = 3;
        let m = self.columns.rows;
        let n = self.columns.cols.len();
        let bland_after = max_iters / 2;
        let mut confirms = 0usize;
        // Degeneracy throttle: after a long run of zero-step pivots, Dantzig pricing
        // is just orbiting a degenerate vertex; switching to Bland's rule (first
        // improving column, guaranteed finite) breaks the orbit, and the first real
        // step switches back to the faster rule.
        let mut consecutive_degenerate = 0usize;
        const BLAND_AFTER_DEGENERATE: usize = 64;
        // Phase-2 endgame: once the coarse pricing tolerance is exhausted on a fresh
        // factorization, sweep again with the fine tolerance (see the constants).
        let mut fine_pricing = false;
        // Devex reference weights (f64 pricing only): entering is chosen by the
        // steepest-edge surrogate r_j² / w_j instead of the raw most-negative reduced
        // cost. On the heavily degenerate Handelman systems Dantzig orbits a vertex
        // for tens of thousands of zero-step pivots (observed >200k on the degree-3
        // `nested` LP); Devex cuts that by an order of magnitude at the price of one
        // extra BTRAN and one column sweep per pivot.
        let mut weights = vec![1.0f64; n];
        // Columns whose transformed direction had no numerically usable pivot; they
        // sit out until the next reinversion gives them a cleaner transform. A
        // verdict reached while bans are active is only accepted after a bounded
        // number of clear-and-retry rounds, so bans never silently hide columns from
        // the final optimality proof.
        let mut banned = vec![false; n];
        let mut ban_active = false;
        let mut ban_resets = 0usize;
        const MAX_BAN_RESETS: usize = 8;
        // Exact-backend candidate queue: one full Bland sweep is `O(n · nnz)` in
        // rational arithmetic and dominates the per-pivot cost on the big Handelman
        // systems, so a sweep banks the next [`EXACT_QUEUE`] improving columns (in
        // index order). Later pivots pop candidates and *re-verify their reduced
        // cost exactly* before entering — a stale candidate is just skipped, and the
        // optimality verdict is still only ever declared by a full sweep that found
        // nothing. During a degenerate streak the queue is cleared every iteration,
        // which restores textbook lowest-index Bland and its anti-cycling guarantee.
        const EXACT_QUEUE: usize = 32;
        let mut exact_candidates: std::collections::VecDeque<usize> =
            std::collections::VecDeque::new();
        // Rigorous `f64` prescreen for the exact sweep. On the heavily degenerate
        // Handelman systems ~97% of exact pivots run during degenerate streaks where
        // the queue is cleared every iteration, so nearly every pivot pays a full
        // O(n · nnz) *rational* pricing sweep. The prescreen computes each reduced
        // cost in `f64` against cached `f64` column copies TOGETHER with a forward
        // error bound (`PRESCREEN_EPS` × the accumulated magnitude sum): a column is
        // skipped only when its reduced cost is *provably* positive — the true
        // rounding error is ≤ ~3·nnz·2⁻⁵² × the magnitude sum, orders of magnitude
        // below the threshold — so Bland's lowest-index order and the optimality
        // verdict remain exact. Overflow/NaN (huge rationals) fails `is_finite` and
        // falls through to the exact dot product, never to a wrong skip.
        const PRESCREEN_EPS: f64 = 1e-9;
        let (cols64, costs64): (Vec<Vec<(usize, f64)>>, Vec<f64>) = if S::IS_EXACT {
            (
                self.columns
                    .cols
                    .iter()
                    .map(|col| col.iter().map(|(row, v)| (*row, v.to_f64())).collect())
                    .collect(),
                (0..n).map(|j| self.cost(&phase, j).to_f64()).collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let mut y64 = vec![0.0f64; m];
        let mut y = vec![S::zero(); m];
        // Exact backend: `y` is maintained *incrementally* across pivots (see the
        // update at the pivot step) and only recomputed from a dense `c_B` BTRAN
        // when this flag is down — at phase start and after a refactorization. The
        // `f64` backend recomputes every iteration (the fresh BTRAN is its defense
        // against reduced-cost drift; exact arithmetic has none to defend against).
        let mut y_valid = false;
        // Reduced-cost memoization (exact backend). A pivot's dual update touches
        // only the rows where ρ_r is non-zero, so a column whose support none of
        // those rows intersect has an *unchanged* reduced cost — re-deriving it
        // every sweep is pure waste on the long degenerate streaks. `changed_at`
        // stamps each dual row with the tick of its last change; `r_cache[j]`
        // holds the verdict computed at some tick (`None` = proven non-negative,
        // `Some(r)` = exact negative reduced cost) and is trusted while no row in
        // the column's support carries a newer stamp. Exactness makes this sound:
        // a cached verdict is bit-for-bit what a fresh dot product would produce,
        // so Bland's order and the optimality proof are unchanged.
        let mut tick: u64 = 0;
        let mut changed_at = vec![0u64; m];
        let mut r_cache: Vec<(u64, Option<S>)> =
            if S::IS_EXACT { vec![(0, None); n] } else { Vec::new() };
        for iteration in 0..max_iters {
            if (S::IS_EXACT || iteration % DEADLINE_EVERY == 0) && deadline.expired() {
                return LpStatus::TimedOut;
            }
            // `f64` rebuilds on a short fixed cadence (round-off control); the exact
            // backend rebuilds only when the eta file's fill outgrows the basis fill
            // (see `lu::should_refactorize`) — eta updates are exact, so the rebuild
            // is purely a cost decision.
            let wants_reinvert = if S::IS_EXACT {
                crate::lu::should_refactorize(
                    self.etas_since_reinvert,
                    self.eta_nnz_since_reinvert,
                    self.base_fill,
                    m,
                )
            } else {
                self.etas_since_reinvert >= REINVERT_EVERY
            };
            if wants_reinvert {
                let reinvert_start = Instant::now();
                self.reinvert();
                self.reinvert_time += reinvert_start.elapsed();
                banned.iter_mut().for_each(|b| *b = false);
                ban_active = false;
                // The dual `y = c_B B⁻¹` depends only on the basis, which a rebuild
                // preserves — but a rebuild may *degrade* (swap a dependent column
                // for an artificial), and a fresh short factorization re-derives the
                // same values through far fewer etas, so recompute either way.
                y_valid = false;
            }
            // Pricing dual: y = c_B B⁻¹, r_j = c_j − y · A_j. Recomputed from a
            // dense BTRAN when stale (f64: every iteration; exact: see `y_valid`).
            if !S::IS_EXACT || !y_valid {
                let btran_start = Instant::now();
                for (pos, value) in y.iter_mut().enumerate() {
                    *value = self.cost(&phase, self.factor.basis[pos]);
                }
                self.factor.btran(&mut y);
                self.btran_time += btran_start.elapsed();
                y_valid = true;
                if S::IS_EXACT {
                    // Every row is considered touched: the rebuild may have degraded
                    // the basis, so no cached verdict survives a full recompute.
                    tick += 1;
                    changed_at.fill(tick);
                    for (value, exact) in y64.iter_mut().zip(&y) {
                        *value = exact.to_f64();
                    }
                }
            }
            // Entering rule. The exact backend stays on Bland's rule (low-index
            // first): it is termination-safe, and the greedier alternatives were
            // *measured worse* on the degree-3 `nested` system — full Dantzig and
            // Dantzig-over-a-64-column-window both walk pivot sequences whose exact
            // coefficients grow enough to miss the deadline where Bland's low-index
            // bias completes the proof. The sweep cost is amortized through the
            // candidate queue above. The f64 backend prices with Devex from a full
            // sweep and falls back to Bland on degeneracy.
            let use_bland = S::IS_EXACT
                || iteration >= bland_after
                || consecutive_degenerate >= BLAND_AFTER_DEGENERATE;
            let mut entering: Option<(usize, f64)> = None;
            // Exact backend: the entering column's *exact* reduced cost, recorded at
            // pricing time — the incremental dual update at the pivot step needs it
            // (γ = d̄_q / α_r) and re-deriving it would cost another exact dot.
            let mut entering_reduced: Option<S> = None;
            if S::IS_EXACT {
                if consecutive_degenerate >= BLAND_AFTER_DEGENERATE {
                    // Zero-step streak: drop the stale queue and run textbook Bland.
                    exact_candidates.clear();
                }
                while let Some(j) = exact_candidates.pop_front() {
                    if self.in_basis[j] {
                        continue;
                    }
                    let reduced = self.cost(&phase, j).sub(&self.columns.dot(&y, j));
                    let negative = reduced.is_negative();
                    r_cache[j] = (tick, if negative { Some(reduced.clone()) } else { None });
                    if negative {
                        entering = Some((j, reduced.to_f64()));
                        entering_reduced = Some(reduced);
                        self.queue_served += 1;
                        break;
                    }
                }
            }
            if entering.is_none() {
                let sweep_start = Instant::now();
                if S::IS_EXACT {
                    self.pricing_sweeps += 1;
                }
                let mut queued = 0usize;
                for j in 0..n {
                    if self.in_basis[j] || banned[j] {
                        continue;
                    }
                    let reduced;
                    if S::IS_EXACT {
                        // Memoized verdict first: trusted while no dual row in the
                        // column's support changed since it was computed.
                        let stamp = r_cache[j].0;
                        let cached_fresh = stamp != 0
                            && self.columns.cols[j]
                                .iter()
                                .all(|(row, _)| changed_at[*row] <= stamp);
                        if cached_fresh {
                            match &r_cache[j].1 {
                                None => continue,
                                Some(r) => reduced = r.clone(),
                            }
                        } else {
                            // Provably-positive reduced costs are skipped without
                            // any rational arithmetic (see PRESCREEN_EPS above).
                            let mut r64 = costs64[j];
                            let mut mag = r64.abs();
                            for &(row, v) in &cols64[j] {
                                let term = y64[row] * v;
                                r64 -= term;
                                mag += term.abs();
                            }
                            if r64.is_finite() && mag.is_finite() && r64 > PRESCREEN_EPS * mag {
                                r_cache[j] = (tick, None);
                                continue;
                            }
                            let exact = self.cost(&phase, j).sub(&self.columns.dot(&y, j));
                            let negative = exact.is_negative();
                            r_cache[j] =
                                (tick, if negative { Some(exact.clone()) } else { None });
                            if !negative {
                                continue;
                            }
                            reduced = exact;
                        }
                    } else {
                        reduced = self.cost(&phase, j).sub(&self.columns.dot(&y, j));
                        let improving = if fine_pricing {
                            reduced.to_f64() < -FINE_PRICING_EPS
                        } else {
                            reduced.to_f64() < -COARSE_PRICING_EPS
                        };
                        if !improving {
                            continue;
                        }
                    }
                    if use_bland {
                        if entering.is_none() {
                            entering = Some((j, reduced.to_f64()));
                            if !S::IS_EXACT {
                                break;
                            }
                            entering_reduced = Some(reduced);
                            continue;
                        }
                        // Exact backend: bank the following improving columns.
                        exact_candidates.push_back(j);
                        queued += 1;
                        if queued >= EXACT_QUEUE {
                            break;
                        }
                        continue;
                    }
                    // Devex score: r_j² / w_j (bigger is better).
                    let r = reduced.to_f64();
                    let score = r * r / weights[j];
                    match &entering {
                        None => entering = Some((j, score)),
                        Some((_, best)) if score > *best => entering = Some((j, score)),
                        Some(_) => {}
                    }
                }
                self.sweep_time += sweep_start.elapsed();
            }
            let Some((entering, _)) = entering else {
                // Apparent optimality. For the floating-point backend, confirm on a
                // freshly reinverted factorization before trusting the verdict.
                if !S::IS_EXACT && self.etas_since_reinvert > 0 && confirms < MAX_CONFIRMS {
                    confirms += 1;
                    self.reinvert();
                    banned.iter_mut().for_each(|b| *b = false);
                    ban_active = false;
                    continue;
                }
                if !S::IS_EXACT && ban_active {
                    // "No improving column" while columns are banned is not a proof.
                    // Clear the bans (the factorization is fresh here, so their
                    // transforms are clean again) and re-price; give up honestly if
                    // the ban cycle will not die down.
                    if ban_resets < MAX_BAN_RESETS {
                        ban_resets += 1;
                        banned.iter_mut().for_each(|b| *b = false);
                        ban_active = false;
                        continue;
                    }
                    return LpStatus::IterationLimit;
                }
                if !S::IS_EXACT && !fine_pricing && matches!(phase, Phase::Two) {
                    // Coarse tolerance exhausted on fresh data: run the fine endgame
                    // sweep before declaring the optimum.
                    fine_pricing = true;
                    continue;
                }
                if !S::IS_EXACT {
                    // Round-off nudges basic values slightly negative over tens of
                    // thousands of pivots; on a freshly reinverted factorization a
                    // residual at the 1e-6 scale (equilibrated data) is numerical
                    // dust, not infeasibility — clamp it and accept. Anything larger
                    // means the basis cannot be trusted: report non-convergence so
                    // the caller can fall back (perturbed retry, dense path, exact
                    // backend). The model-level `solve_f64` re-checks the recovered
                    // solution against the *original* constraints either way, so an
                    // over-eager clamp cannot smuggle in an unsound optimum.
                    const FEAS_EPS: f64 = 1e-6;
                    if self.x_basic.iter().any(|v| v.to_f64() < -FEAS_EPS) {
                        if std::env::var("DCA_LP_DEBUG").is_ok() {
                            let min = self
                                .x_basic
                                .iter()
                                .map(Scalar::to_f64)
                                .fold(f64::INFINITY, f64::min);
                            eprintln!(
                                "[lp] revised: basis infeasible at optimum (min x = {min:e}), giving up"
                            );
                        }
                        return LpStatus::IterationLimit;
                    }
                    for value in &mut self.x_basic {
                        if value.is_negative() {
                            *value = S::zero();
                        }
                    }
                }
                if std::env::var("DCA_LP_CHECK").is_ok() {
                    // Independent consistency audit of the claimed optimum: check
                    // B·x_B = b directly against the column data (no eta file).
                    let mut residual = vec![S::zero(); m];
                    for (pos, &col) in self.factor.basis.iter().enumerate() {
                        if self.x_basic[pos].is_exactly_zero() {
                            continue;
                        }
                        if col < n {
                            for (row, value) in &self.columns.cols[col] {
                                residual[*row] =
                                    residual[*row].add(&value.mul(&self.x_basic[pos]));
                            }
                        } else {
                            residual[col - n] =
                                residual[col - n].add(&self.x_basic[pos]);
                        }
                    }
                    let max_residual = residual
                        .iter()
                        .zip(&self.form.rhs)
                        .map(|(lhs, rhs)| (lhs.to_f64() - rhs.to_f64()).abs())
                        .fold(0.0f64, f64::max);
                    let min_reduced = (0..n)
                        .filter(|&j| !self.in_basis[j])
                        .map(|j| self.cost(&phase, j).sub(&self.columns.dot(&y, j)).to_f64())
                        .fold(f64::INFINITY, f64::min);
                    // Exact backend: the verdict was priced against the
                    // *incrementally maintained* dual — audit it against a fresh
                    // dense BTRAN of c_B (the two must agree exactly).
                    let mut dual_drift = 0usize;
                    if S::IS_EXACT {
                        let mut fresh = vec![S::zero(); m];
                        for (pos, value) in fresh.iter_mut().enumerate() {
                            *value = self.cost(&phase, self.factor.basis[pos]);
                        }
                        self.factor.btran(&mut fresh);
                        dual_drift = fresh
                            .iter()
                            .zip(&y)
                            .filter(|(a, b)| !a.sub(b).is_exactly_zero())
                            .count();
                    }
                    eprintln!(
                        "[lp] optimality audit: max |Bx-b| = {max_residual:e}, min reduced cost = {min_reduced:e}, dual drift rows = {dual_drift}"
                    );
                }
                return LpStatus::Optimal;
            };
            // FTRAN the entering column and run the ratio test.
            let mut d = vec![S::zero(); m];
            self.columns.scatter(entering, &mut d);
            self.factor.ftran(&mut d);
            // Ratio test. Two kinds of blocking rows. (1) The ordinary test: a
            // positive entry bounds the step before the basic value hits zero. (2) A
            // basic *artificial* at zero with a negative entry: increasing the
            // entering variable would push the artificial above zero, i.e. off the
            // original feasible set — the extended relaxation would happily ride that
            // direction to a bogus "unbounded"/"optimal" verdict on `b = 0` systems
            // (the Handelman norm). Such rows block at θ = 0, which drives the
            // artificial out of the basis on demand.
            //
            // For `f64` the choice among (near-)tied rows is Harris-flavoured: a
            // first pass finds the minimum ratio, a second pass picks, among rows
            // whose ratio is within a whisker of it, the row with the numerically
            // largest pivot (preferring artificial evictions). Degenerate systems tie
            // thousands of rows at θ = 0; always pivoting on the largest entry is
            // what keeps the eta file from amplifying round-off until the basic
            // values drift visibly negative.
            // In phase 1 an artificial with a still-positive value may trade off
            // against others (only zero-valued ones are pinned); in phase 2 *no*
            // artificial may grow — its phase-2 cost is zero, so nothing would ever
            // price it back down, and a grown artificial means the "solution" has
            // left the original feasible set (spurious unboundedness on `nested`).
            let pin_positive_artificials = matches!(phase, Phase::Two);
            let blocking_ratio = |row: usize, coeff: &S| -> Option<S> {
                let artificial = self.factor.basis[row] >= n;
                if coeff.is_positive() {
                    if !S::IS_EXACT && coeff.to_f64() < PIVOT_EPS {
                        None
                    } else {
                        Some(self.x_basic[row].div(coeff))
                    }
                } else if artificial
                    && coeff.is_negative()
                    && (pin_positive_artificials || !self.x_basic[row].is_positive())
                {
                    if !S::IS_EXACT && coeff.to_f64() > -PIVOT_EPS {
                        None
                    } else {
                        Some(S::zero())
                    }
                } else {
                    None
                }
            };
            // Strict minimum-ratio with the tie-break that the dense tableau has used
            // through every degenerate system of the benchmark suite: prefer evicting
            // an artificial, then the lower basic column id (lexicographic flavour —
            // a deterministic order the degenerate ties cannot cycle through).
            let mut leaving: Option<usize> = None;
            let mut best_ratio: Option<S> = None;
            for (row, coeff) in d.iter().enumerate().take(m) {
                let Some(ratio) = blocking_ratio(row, coeff) else { continue };
                let better = match &best_ratio {
                    None => true,
                    Some(best) => {
                        if ratio.lt(best) {
                            true
                        } else if best.lt(&ratio) {
                            false
                        } else {
                            leaving.is_some_and(|l| {
                                let l_artificial = self.factor.basis[l] >= n;
                                let artificial = self.factor.basis[row] >= n;
                                if artificial != l_artificial {
                                    artificial
                                } else {
                                    self.factor.basis[row] < self.factor.basis[l]
                                }
                            })
                        }
                    }
                };
                if better {
                    best_ratio = Some(ratio);
                    leaving = Some(row);
                }
            }
            if leaving.is_none() && !S::IS_EXACT {
                // No acceptable blocking row. Before concluding "unbounded", re-run
                // the ratio test over positive entries below the pivot-size screen —
                // a direction blocked only by small pivots is not unbounded. Entries
                // under the hard floor stay rejected (dividing by a ~1e-300 pivot
                // NaN-poisons the eta file); if nothing ≥ the floor blocks either,
                // the column is numerically unusable: ban it until the next
                // reinversion and re-price instead of pivoting on garbage.
                const PIVOT_FLOOR: f64 = 1e-12;
                let mut best: Option<usize> = None;
                for (row, value) in d.iter().enumerate() {
                    // `partial_cmp` keeps the NaN behaviour explicit: a NaN pivot
                    // compares as None and is rejected like a sub-floor one.
                    let usable = value
                        .to_f64()
                        .partial_cmp(&PIVOT_FLOOR)
                        .is_some_and(|o| o != std::cmp::Ordering::Less);
                    if !usable {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => {
                            let ratio = self.x_basic[row].to_f64() / value.to_f64();
                            let best_ratio = self.x_basic[b].to_f64() / d[b].to_f64();
                            ratio < best_ratio
                                || (ratio == best_ratio && d[b].to_f64() < value.to_f64())
                        }
                    };
                    if better {
                        best = Some(row);
                    }
                }
                leaving = best;
                if leaving.is_none() && d.iter().any(|v| v.to_f64() > 0.0) {
                    banned[entering] = true;
                    ban_active = true;
                    continue;
                }
            }
            let Some(leaving) = leaving else {
                // No positive entry: unbounded — or drift. Confirm before giving up.
                if !S::IS_EXACT && self.etas_since_reinvert > 0 && confirms < MAX_CONFIRMS {
                    confirms += 1;
                    self.reinvert();
                    banned.iter_mut().for_each(|b| *b = false);
                    ban_active = false;
                    continue;
                }
                if !S::IS_EXACT {
                    // A phase-1 unbounded claim is always numerics (the objective is
                    // bounded below by zero), and so is a *transformed* direction
                    // that is numerically null. One exception: a structurally empty
                    // column (no constraint mentions it) with negative cost is a
                    // genuine ray once phase 1 has established feasibility — that is
                    // exactly how an unconstrained negative-cost variable surfaces
                    // after presolve declined to call it (the rows might have been
                    // infeasible). Ban everything else and re-price instead of
                    // surfacing a false verdict.
                    let structurally_empty = entering < self.columns.cols.len()
                        && self.columns.cols[entering].is_empty();
                    if matches!(phase, Phase::Two) && structurally_empty {
                        return LpStatus::Unbounded;
                    }
                    let has_negative = d.iter().any(|v| v.to_f64() < -1e-9);
                    if matches!(phase, Phase::One) || !has_negative {
                        banned[entering] = true;
                        ban_active = true;
                        continue;
                    }
                }
                if std::env::var("DCA_LP_CHECK").is_ok() {
                    // Cross-check pricing against the transformed column: the reduced
                    // cost must equal c_q − c_B·d up to round-off.
                    let priced = self.cost(&phase, entering).sub(&self.columns.dot(&y, entering));
                    let direct: f64 = self.cost(&phase, entering).to_f64()
                        - self
                            .factor
                            .basis
                            .iter()
                            .zip(&d)
                            .map(|(&col, di)| self.cost(&phase, col).to_f64() * di.to_f64())
                            .sum::<f64>();
                    let dmax = d.iter().map(Scalar::to_f64).fold(f64::NEG_INFINITY, f64::max);
                    eprintln!(
                        "[lp] unbounded claim: col {entering}, r(BTRAN) = {:e}, r(FTRAN) = {direct:e}, max d = {dmax:e}, etas = {}",
                        priced.to_f64(),
                        self.factor.etas.len()
                    );
                }
                return LpStatus::Unbounded;
            };
            // Devex weight update (Forrest–Goldfarb reference framework, simplified):
            // the pivot row α of the tableau rescales every nonbasic weight.
            if !S::IS_EXACT && !use_bland {
                let alpha_q = d[leaving].to_f64();
                if alpha_q.abs() > PIVOT_EPS {
                    let mut rho = vec![S::zero(); m];
                    rho[leaving] = S::one();
                    self.factor.btran(&mut rho);
                    let reference = weights[entering].max(1.0);
                    for (j, weight) in weights.iter_mut().enumerate().take(n) {
                        if self.in_basis[j] || j == entering {
                            continue;
                        }
                        let alpha_j = self.columns.dot(&rho, j).to_f64();
                        if alpha_j != 0.0 {
                            let candidate = (alpha_j / alpha_q).powi(2) * reference;
                            if candidate > *weight {
                                *weight = candidate;
                            }
                        }
                    }
                    weights[entering] = (reference / (alpha_q * alpha_q)).max(1.0);
                    let leaving_col = self.factor.basis[leaving];
                    if leaving_col < n {
                        weights[leaving_col] = weights[leaving_col].max(1.0);
                    }
                }
            }

            // Pivot: update basic values, basis, and the eta file.
            let theta = self.x_basic[leaving].div(&d[leaving]);
            if theta.to_f64().abs() <= 1e-12 {
                consecutive_degenerate += 1;
                self.degenerate_pivots += 1;
            } else {
                consecutive_degenerate = 0;
            }
            for (row, coeff) in d.iter().enumerate().take(m) {
                if row == leaving || coeff.is_exactly_zero() {
                    continue;
                }
                self.x_basic[row] = self.x_basic[row].sub(&theta.mul(coeff));
            }
            self.x_basic[leaving] = theta;
            // Exact backend: incremental dual update in place of next iteration's
            // dense `c_B` BTRAN. With B̄ the post-pivot basis, the new dual is
            // exactly y' = y + (d̄_q / α_r)·ρ_r, where d̄_q is the entering column's
            // reduced cost (recorded at pricing), α_r = d[leaving] the pivot
            // element, and ρ_r = e_r B⁻¹ row r of the *pre-pivot* basis inverse —
            // one BTRAN of a unit vector, which stays sparse through the eta file
            // (vs the dense cost vector the full recomputation drags through it).
            // Proof it prices B̄ correctly: for a surviving basic column A_{B(i)},
            // ρ_r·A_{B(i)} = (e_r)_i = 0, so y'·A_{B(i)} = c_{B(i)} unchanged; for
            // the entering column, ρ_r·A_q = d_r = α_r, so y'·A_q = (c_q − d̄_q) +
            // d̄_q = c_q. Exact arithmetic means no drift — the verdict sweep can
            // trust the maintained dual outright (and `DCA_LP_CHECK` audits it).
            if S::IS_EXACT {
                let btran_start = Instant::now();
                let mut rho = vec![S::zero(); m];
                rho[leaving] = S::one();
                self.factor.btran(&mut rho);
                // Infallible: when `S::IS_EXACT`, the entering column was chosen
                // by the exact pricing sweep in this same iteration, which always
                // records its reduced cost before reaching the pivot step.
                #[allow(clippy::expect_used)]
                let gamma = entering_reduced
                    .take()
                    .expect("exact pricing always records the entering reduced cost")
                    .div(&d[leaving]);
                tick += 1;
                for (row, (value, r)) in y.iter_mut().zip(&rho).enumerate() {
                    if !r.is_exactly_zero() {
                        *value = value.add(&gamma.mul(r));
                        // Stamp the touched rows (this is what invalidates cached
                        // reduced costs) and keep the f64 shadow dual in step.
                        changed_at[row] = tick;
                        y64[row] = value.to_f64();
                    }
                }
                self.btran_time += btran_start.elapsed();
            }
            self.in_basis[self.factor.basis[leaving]] = false;
            self.in_basis[entering] = true;
            self.factor.basis[leaving] = entering;
            let pivot_magnitude = d[leaving].to_f64().abs();
            self.factor.push_eta(&d, leaving);
            self.etas_since_reinvert += 1;
            if let Some(eta) = self.factor.etas.last() {
                self.eta_nnz_since_reinvert += eta.weight();
            }
            if S::IS_EXACT {
                self.lu_updates += 1;
            }
            self.iterations += 1;
            if !S::IS_EXACT && pivot_magnitude < 1e-6 {
                // A small accepted pivot is exactly what compounds into an
                // ill-conditioned eta file; refactorize immediately instead of
                // letting it fester for another reinversion period.
                self.etas_since_reinvert = REINVERT_EVERY;
            }
        }
        LpStatus::IterationLimit
    }

    fn outcome(&self, status: LpStatus, n: usize) -> RevisedOutcome<S> {
        let values = if status == LpStatus::Optimal {
            let mut values = vec![S::zero(); n];
            for (pos, &col) in self.factor.basis.iter().enumerate() {
                if col < n {
                    values[col] = self.x_basic[pos].clone();
                }
            }
            values
        } else {
            Vec::new()
        };
        let basis: Vec<usize> =
            self.factor.basis.iter().copied().filter(|&col| col < n).collect();
        RevisedOutcome {
            status,
            values,
            basis,
            iterations: self.iterations,
            truncated: false,
            lu_updates: self.lu_updates,
            lu_refactorizations: self.lu_refactorizations,
            dual: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_numeric::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    /// minimize -x - y  s.t.  x + y + s = 4: optimum 4 at x + y = 4.
    #[test]
    fn small_exact_lp() {
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(1, 1), r(1, 1)]],
            rhs: vec![r(4, 1)],
            costs: vec![r(-1, 1), r(-1, 1), r(0, 1)],
            model_columns: Vec::new(),
        };
        let out = solve_revised(&form, &Deadline::unlimited(), None, 0.0);
        assert_eq!(out.status, LpStatus::Optimal);
        let total = out.values[0].clone() + out.values[1].clone();
        assert_eq!(total, r(4, 1));
        assert!(out.iterations >= 1);
    }

    #[test]
    fn infeasible_exact_lp() {
        // x = 2 and x = 3 (as two equality rows over one column).
        let form = StandardForm {
            matrix: vec![vec![r(1, 1)], vec![r(1, 1)]],
            rhs: vec![r(2, 1), r(3, 1)],
            costs: vec![r(0, 1)],
            model_columns: Vec::new(),
        };
        let out = solve_revised(&form, &Deadline::unlimited(), None, 0.0);
        assert_eq!(out.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_f64_lp() {
        // minimize -x s.t. x - s = 1 (x unbounded above).
        let form = StandardForm {
            matrix: vec![vec![1.0f64, -1.0]],
            rhs: vec![1.0],
            costs: vec![-1.0, 0.0],
            model_columns: Vec::new(),
        };
        let out = solve_revised(&form, &Deadline::unlimited(), None, 0.0);
        assert_eq!(out.status, LpStatus::Unbounded);
    }

    #[test]
    fn warm_start_reuses_the_final_basis() {
        // minimize x + y s.t. x + 2y - s1 = 4, 3x + y - s2 = 6.
        let form = StandardForm {
            matrix: vec![
                vec![1.0f64, 2.0, -1.0, 0.0],
                vec![3.0, 1.0, 0.0, -1.0],
            ],
            rhs: vec![4.0, 6.0],
            costs: vec![1.0, 1.0, 0.0, 0.0],
            model_columns: Vec::new(),
        };
        let cold = solve_revised(&form, &Deadline::unlimited(), None, 0.0);
        assert_eq!(cold.status, LpStatus::Optimal);
        assert!((cold.values[0] - 1.6).abs() < 1e-6);
        assert!((cold.values[1] - 1.2).abs() < 1e-6);
        let warm = solve_revised(&form, &Deadline::unlimited(), Some(&cold.basis), 0.0);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.values[0] - 1.6).abs() < 1e-6);
        // The warm start lands on the optimal basis: phase 1 is skipped entirely and
        // phase 2 confirms optimality without a single pivot.
        assert_eq!(warm.iterations, 0, "warm start should re-solve pivot-free");
    }

    /// Factorization self-consistency: after a reinversion (including dependent
    /// preferred columns and artificial padding), `B · ftran(A_j)` must reproduce
    /// `A_j` for every column, and `btran`/`ftran` must agree on reduced costs.
    #[test]
    fn reinversion_is_a_consistent_inverse() {
        let mut seed = 0xABCDEF0123456789u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..200 {
            let m = 2 + (next() % 10) as usize;
            let n = 2 + (next() % 14) as usize;
            let matrix: Vec<Vec<f64>> = (0..m)
                .map(|_| {
                    (0..n)
                        .map(|_| {
                            if next() % 2 == 0 {
                                ((next() % 5) as i64 - 2) as f64
                            } else {
                                0.0
                            }
                        })
                        .collect()
                })
                .collect();
            let columns = Columns {
                cols: (0..n)
                    .map(|j| {
                        matrix
                            .iter()
                            .enumerate()
                            .filter(|(_, row)| row[j] != 0.0)
                            .map(|(i, row)| (i, row[j]))
                            .collect()
                    })
                    .collect(),
                rows: m,
            };
            // Preferred list with duplicates and likely-dependent columns.
            let preferred: Vec<usize> = (0..n + 2).map(|_| (next() % n as u64) as usize).collect();
            let (factor, _, _) = Factorization::reinvert(&columns, &preferred, PIVOT_EPS);
            // Check every structural column: multiply B by ftran(A_j) and compare.
            #[allow(clippy::needless_range_loop)] // j is a column index of `matrix`
            for j in 0..n {
                let mut d = vec![0.0f64; m];
                columns.scatter(j, &mut d);
                factor.ftran(&mut d);
                let mut reconstructed = vec![0.0f64; m];
                for (pos, &col) in factor.basis.iter().enumerate() {
                    if d[pos] == 0.0 {
                        continue;
                    }
                    if col < n {
                        for (row, value) in &columns.cols[col] {
                            reconstructed[*row] += value * d[pos];
                        }
                    } else {
                        reconstructed[col - n] += d[pos];
                    }
                }
                for (row, &rebuilt) in reconstructed.iter().enumerate() {
                    let expected = matrix[row][j];
                    assert!(
                        (rebuilt - expected).abs() <= 1e-6 * (1.0 + expected.abs()),
                        "case {case}: B·ftran(A_{j}) diverges at row {row}: {rebuilt} vs {expected}\nbasis: {:?}",
                        factor.basis
                    );
                }
            }
            // BTRAN/FTRAN duality: y·A_j == c_B·(B⁻¹A_j) for a random cost vector.
            let costs: Vec<f64> = (0..m).map(|_| ((next() % 7) as i64 - 3) as f64).collect();
            let mut y = costs.clone();
            factor.btran(&mut y);
            for j in 0..n {
                let mut d = vec![0.0f64; m];
                columns.scatter(j, &mut d);
                let via_btran: f64 = d
                    .iter()
                    .enumerate()
                    .map(|(row, value)| y[row] * value)
                    .sum();
                factor.ftran(&mut d);
                let via_ftran: f64 =
                    d.iter().enumerate().map(|(pos, value)| costs[pos] * value).sum();
                assert!(
                    (via_btran - via_ftran).abs() <= 1e-6 * (1.0 + via_ftran.abs()),
                    "case {case}: BTRAN/FTRAN disagree on column {j}: {via_btran} vs {via_ftran}"
                );
            }
        }
    }

    #[test]
    fn degenerate_rhs_terminates() {
        // Heavily degenerate: three equality rows with zero rhs over five columns.
        let form = StandardForm {
            matrix: vec![
                vec![1.0f64, -1.0, 0.0, 1.0, 0.0],
                vec![0.0, 1.0, -1.0, 0.0, 1.0],
                vec![1.0, 0.0, -1.0, 1.0, 1.0],
            ],
            rhs: vec![0.0, 0.0, 0.0],
            costs: vec![1.0, 1.0, 1.0, 0.0, 0.0],
            model_columns: Vec::new(),
        };
        let out = solve_revised(&form, &Deadline::unlimited(), None, 0.0);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!(out.values.iter().all(|v| v.abs() < 1e-9));
    }
}
