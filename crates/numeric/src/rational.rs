//! Arbitrary-precision rational numbers built on [`BigInt`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::{BigInt, ParseBigIntError};

/// Error returned when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    kind: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.kind)
    }
}

impl std::error::Error for ParseRationalError {}

impl From<ParseBigIntError> for ParseRationalError {
    fn from(e: ParseBigIntError) -> Self {
        ParseRationalError { kind: e.to_string() }
    }
}

/// An exact rational number `numerator / denominator`.
///
/// Invariants: the denominator is strictly positive, and the fraction is fully reduced
/// (gcd of numerator and denominator is 1); zero is represented as `0 / 1`.
///
/// # Examples
///
/// ```
/// use dca_numeric::Rational;
/// let r = Rational::new(6, -8);
/// assert_eq!(r.to_string(), "-3/4");
/// assert_eq!(r + Rational::new(3, 4), Rational::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// Creates a rational from machine-integer numerator and denominator.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Rational {
        Rational::from_bigints(BigInt::from(num), BigInt::from(den))
    }

    /// Creates a rational from big-integer numerator and denominator, normalizing.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational { num: BigInt::zero(), den: BigInt::one() };
        }
        let (num, den) = if den.is_negative() { (-num, -den) } else { (num, den) };
        let g = num.gcd(&den);
        let (num, _) = num.div_rem(&g);
        let (den, _) = den.div_rem(&g);
        Rational { num, den }
    }

    /// Creates a rational equal to the given integer.
    pub fn from_int(v: i64) -> Rational {
        Rational { num: BigInt::from(v), den: BigInt::one() }
    }

    /// The value `0`.
    pub fn zero() -> Rational {
        Rational { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The value `1`.
    pub fn one() -> Rational {
        Rational::from_int(1)
    }

    /// Numerator (sign-carrying).
    pub fn numerator(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always strictly positive).
    pub fn denominator(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if this value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::from_bigints(self.den.clone(), self.num.clone())
    }

    /// Largest integer less than or equal to the value.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_zero() || !self.num.is_negative() {
            q
        } else {
            &q - &BigInt::one()
        }
    }

    /// Smallest integer greater than or equal to the value.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_zero() || self.num.is_negative() {
            q
        } else {
            &q + &BigInt::one()
        }
    }

    /// Rounds to the nearest integer (half away from zero).
    pub fn round(&self) -> BigInt {
        let two = Rational::from_int(2);
        if self.is_negative() {
            -((&-self.clone() + &(Rational::one() / two)).floor())
        } else {
            (self + &(Rational::one() / two)).floor()
        }
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so that both parts fit comfortably in f64 when possible.
        let n = self.num.to_f64();
        let d = self.den.to_f64();
        if n.is_finite() && d.is_finite() && d != 0.0 {
            n / d
        } else {
            // Fall back to a digit-level approximation for extreme magnitudes.
            let bits = self.num.bits() as i64 - self.den.bits() as i64;
            if self.num.is_negative() {
                -(2f64.powi(bits.clamp(-1000, 1000) as i32))
            } else {
                2f64.powi(bits.clamp(-1000, 1000) as i32)
            }
        }
    }

    /// Creates a rational that approximates an `f64` exactly (binary expansion).
    ///
    /// # Panics
    ///
    /// Panics if the input is NaN or infinite.
    pub fn from_f64(v: f64) -> Rational {
        assert!(v.is_finite(), "cannot convert non-finite float to rational");
        if v == 0.0 {
            return Rational::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = if exponent == 0 {
            (bits & 0xf_ffff_ffff_ffff) << 1
        } else {
            (bits & 0xf_ffff_ffff_ffff) | 0x10_0000_0000_0000
        };
        // value = sign * mantissa * 2^(exponent - 1075)
        let mut num = &BigInt::from(mantissa) * &BigInt::from(sign);
        let mut den = BigInt::one();
        let shift = exponent - 1075;
        if shift >= 0 {
            num = &num * &BigInt::from(2i64).pow(shift as u32);
        } else {
            den = BigInt::from(2i64).pow((-shift) as u32);
        }
        Rational::from_bigints(num, den)
    }

    /// Returns the smaller of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Raise to a small non-negative power.
    pub fn pow(&self, exp: u32) -> Rational {
        Rational { num: self.num.pow(exp), den: self.den.pow(exp) }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Rational {
        Rational::from_int(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Rational {
        Rational { num: v, den: BigInt::one() }
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a"`, `"a/b"`, or a decimal literal `"a.b"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseRationalError { kind: "zero denominator".into() });
            }
            return Ok(Rational::from_bigints(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            if frac_part.is_empty() || !frac_part.chars().all(|c| c.is_ascii_digit()) {
                return Err(ParseRationalError { kind: "bad fractional part".into() });
            }
            let frac: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10i64).pow(frac_part.len() as u32);
            let mag = &(&int.abs() * &scale) + &frac;
            let num = if negative { -mag } else { mag };
            return Ok(Rational::from_bigints(num, scale));
        }
        Ok(Rational::from(s.parse::<BigInt>()?))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({})", self)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let num = &(&self.num * &rhs.den) + &(&rhs.num * &self.den);
        let den = &self.den * &rhs.den;
        Rational::from_bigints(num, den)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs.clone())
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::from_bigints(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "rational division by zero");
        Rational::from_bigints(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = &*self - &rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = &*self * &rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    /// A deterministic grid of rationals covering signs, integers, and ratios with
    /// shared and coprime factors (offline stand-in for property testing).
    fn sample_rationals() -> Vec<Rational> {
        let numerators = [-1000i64, -999, -17, -3, -1, 0, 1, 2, 5, 64, 501, 999];
        let denominators = [1i64, 2, 3, 7, 64, 99, 1000];
        let mut samples = Vec::new();
        for n in numerators {
            for d in denominators {
                samples.push(r(n, d));
            }
        }
        samples
    }

    #[test]
    fn normalization() {
        assert_eq!(r(6, 8), r(3, 4));
        assert_eq!(r(6, -8), r(-3, 4));
        assert_eq!(r(-6, -8), r(3, 4));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(0, -5), Rational::zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(-r(2, 3), r(-2, 3));
    }

    #[test]
    fn comparisons() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil_round() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3i64));
        assert_eq!(r(5, 2).round(), BigInt::from(3i64));
        assert_eq!(r(-5, 2).round(), BigInt::from(-3i64));
        assert_eq!(r(9, 4).round(), BigInt::from(2i64));
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(r(3, 4).to_string(), "3/4");
        assert_eq!(r(8, 4).to_string(), "2");
        assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("7".parse::<Rational>().unwrap(), r(7, 1));
        assert_eq!("2.5".parse::<Rational>().unwrap(), r(5, 2));
        assert_eq!("-0.25".parse::<Rational>().unwrap(), r(-1, 4));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x".parse::<Rational>().is_err());
    }

    #[test]
    fn f64_conversions() {
        assert_eq!(Rational::from_f64(0.5), r(1, 2));
        assert_eq!(Rational::from_f64(-0.25), r(-1, 4));
        assert_eq!(Rational::from_f64(3.0), r(3, 1));
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(Rational::from_f64(0.0), Rational::zero());
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
        assert_eq!(r(2, 3).pow(3), r(8, 27));
        assert_eq!(r(2, 3).pow(0), Rational::one());
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).min(r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max(r(1, 3)), r(1, 2));
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += r(1, 3);
        assert_eq!(x, r(5, 6));
        x -= r(1, 6);
        assert_eq!(x, r(2, 3));
        x *= r(3, 2);
        assert_eq!(x, Rational::one());
    }

    #[test]
    fn add_commutes_and_sub_is_add_neg() {
        let samples = sample_rationals();
        for x in &samples {
            for y in &samples {
                assert_eq!(x + y, y + x);
                assert_eq!(x - y, x + &(-y.clone()));
            }
        }
    }

    #[test]
    fn add_is_associative() {
        let samples = sample_rationals();
        // A coarser sub-grid keeps the triple loop fast.
        let subset: Vec<&Rational> = samples.iter().step_by(5).collect();
        for &x in &subset {
            for &y in &subset {
                for &z in &subset {
                    assert_eq!(&(x + y) + z, x + &(y + z));
                }
            }
        }
    }

    #[test]
    fn mul_inverse_gives_one() {
        for x in sample_rationals() {
            if !x.is_zero() {
                assert_eq!(&x * &x.recip(), Rational::one());
            }
        }
    }

    #[test]
    fn floor_le_value_le_ceil() {
        for x in sample_rationals() {
            let fl = Rational::from(x.floor());
            let ce = Rational::from(x.ceil());
            assert!(fl <= x && x <= ce);
            assert!(&ce - &fl <= Rational::one());
        }
    }

    #[test]
    fn f64_roundtrip_close() {
        for x in sample_rationals() {
            let back = Rational::from_f64(x.to_f64());
            let diff = (&x - &back).abs();
            assert!(diff < r(1, 1_000_000), "roundtrip drift for {x}");
        }
    }

    #[test]
    fn ordering_consistent_with_f64() {
        let samples = sample_rationals();
        for x in &samples {
            for y in &samples {
                if x < y {
                    assert!(x.to_f64() <= y.to_f64());
                }
            }
        }
    }
}
