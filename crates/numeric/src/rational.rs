//! Arbitrary-precision rational numbers with an `i128` small-value fast path.
//!
//! The exact LP backend performs millions of rational add/mul/div/cmp operations whose
//! operands are almost always tiny — Handelman coefficient-matching rows carry integer
//! coefficients in the hundreds, and most pivot chains keep numerators and denominators
//! within a couple of machine words. Routing every one of those operations through
//! heap-allocating [`BigInt`] limb vectors is what made exact pivots expensive, so
//! [`Rational`] stores small values inline:
//!
//! * [`Repr::Small`] holds `num/den` as two `i128`s (denominator positive, fraction
//!   reduced) and performs all arithmetic with overflow-*checked* machine operations —
//!   no allocation, no limb loops;
//! * [`Repr::Big`] holds the [`BigInt`] pair and is used **only** when the value does
//!   not fit the small form. Every constructor demotes eagerly, so the representation
//!   is canonical and derived equality/hashing are exact.
//!
//! On any checked overflow the operation transparently re-runs in [`BigInt`]
//! arithmetic; correctness never depends on operands staying small.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::{BigInt, ParseBigIntError};

/// Error returned when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    kind: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.kind)
    }
}

impl std::error::Error for ParseRationalError {}

impl From<ParseBigIntError> for ParseRationalError {
    fn from(e: ParseBigIntError) -> Self {
        ParseRationalError { kind: e.to_string() }
    }
}

/// Binary GCD on unsigned 128-bit magnitudes (no allocation, no division loop).
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// GCD of two `i128`s as a non-negative `i128` (`None` if the result is `2^127`,
/// which only happens for `gcd(i128::MIN, 0|i128::MIN)`).
fn gcd_i128(a: i128, b: i128) -> Option<i128> {
    let g = gcd_u128(a.unsigned_abs(), b.unsigned_abs());
    i128::try_from(g).ok()
}

/// The canonical storage: `Small` whenever the reduced fraction fits two `i128`s.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// `num/den` with `den > 0` and `gcd(|num|, den) = 1`; zero is `0/1`.
    Small(i128, i128),
    /// Reduced big fraction with positive denominator. Canonically used **only** when
    /// the value does not fit `Small` (constructors demote eagerly), so derived
    /// equality and hashing over the enum are exact.
    Big(BigInt, BigInt),
}

/// An exact rational number `numerator / denominator`.
///
/// Invariants: the denominator is strictly positive, and the fraction is fully reduced
/// (gcd of numerator and denominator is 1); zero is represented as `0 / 1`. Values
/// whose reduced numerator and denominator fit in `i128` are stored inline (see the
/// module docs).
///
/// # Examples
///
/// ```
/// use dca_numeric::Rational;
/// let r = Rational::new(6, -8);
/// assert_eq!(r.to_string(), "-3/4");
/// assert_eq!(r + Rational::new(3, 4), Rational::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    repr: Repr,
}

impl Rational {
    /// Builds the canonical `Small` repr from a *not necessarily reduced* fraction.
    /// Falls back to the `Big` path when reduction itself cannot be represented.
    fn small(num: i128, den: i128) -> Rational {
        debug_assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rational { repr: Repr::Small(0, 1) };
        }
        let g = gcd_u128(num.unsigned_abs(), den.unsigned_abs());
        let Ok(g) = i128::try_from(g) else {
            // gcd = 2^127 means both operands are i128::MIN: the value is exactly 1.
            return Rational { repr: Repr::Small(1, 1) };
        };
        // Division by the positive gcd never overflows (i128::MIN / 1 is itself).
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            match (num.checked_neg(), den.checked_neg()) {
                (Some(n), Some(d)) => {
                    num = n;
                    den = d;
                }
                _ => {
                    // One of the reduced parts is i128::MIN, whose negation does not
                    // fit — the normalized pair genuinely needs the big form (the
                    // fraction is already reduced, so construct it directly rather
                    // than bouncing through `from_bigints`, which would demote-retry).
                    return Rational {
                        repr: Repr::Big(-BigInt::from(num), -BigInt::from(den)),
                    };
                }
            }
        }
        Rational { repr: Repr::Small(num, den) }
    }

    /// Builds `Small` from a pair the caller has proven coprime (the cross-reduced
    /// products of `Mul`/`Div`), skipping the gcd: only sign normalization remains.
    /// This is the hottest constructor in exact pivoting — the second gcd would be
    /// pure waste, since it mathematically always returns 1 here.
    fn small_coprime(num: i128, den: i128) -> Rational {
        debug_assert!(den != 0, "rational with zero denominator");
        debug_assert!(
            num == 0 || gcd_u128(num.unsigned_abs(), den.unsigned_abs()) == 1,
            "small_coprime caller broke the coprimality contract"
        );
        if num == 0 {
            return Rational { repr: Repr::Small(0, 1) };
        }
        if den < 0 {
            return match (num.checked_neg(), den.checked_neg()) {
                (Some(num), Some(den)) => Rational { repr: Repr::Small(num, den) },
                // i128::MIN cannot be negated: the normalized pair needs the big
                // form (already reduced, so construct it directly).
                _ => Rational { repr: Repr::Big(-BigInt::from(num), -BigInt::from(den)) },
            };
        }
        Rational { repr: Repr::Small(num, den) }
    }

    /// Creates a rational from machine-integer numerator and denominator.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        Rational::small(num as i128, den as i128)
    }

    /// Creates a rational from big-integer numerator and denominator, normalizing
    /// (and demoting to the inline `i128` form whenever the reduced value fits).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational { repr: Repr::Small(0, 1) };
        }
        if let (Some(n), Some(d)) = (num.to_i128(), den.to_i128()) {
            return Rational::small(n, d);
        }
        let (num, den) = if den.is_negative() { (-num, -den) } else { (num, den) };
        let g = num.gcd(&den);
        let (num, _) = num.div_rem(&g);
        let (den, _) = den.div_rem(&g);
        // Reduction may have shrunk the value back into the inline range.
        if let (Some(n), Some(d)) = (num.to_i128(), den.to_i128()) {
            return Rational { repr: Repr::Small(n, d) };
        }
        Rational { repr: Repr::Big(num, den) }
    }

    /// Creates a rational equal to the given integer.
    pub fn from_int(v: i64) -> Rational {
        Rational { repr: Repr::Small(v as i128, 1) }
    }

    /// The value `0`.
    pub fn zero() -> Rational {
        Rational { repr: Repr::Small(0, 1) }
    }

    /// The value `1`.
    pub fn one() -> Rational {
        Rational { repr: Repr::Small(1, 1) }
    }

    /// `true` when the value is stored in the inline `i128` fast path (diagnostics
    /// and tests; the arithmetic is representation-transparent).
    pub fn is_small(&self) -> bool {
        matches!(self.repr, Repr::Small(..))
    }

    /// Approximate storage (and arithmetic) cost of this value in 128-bit words:
    /// `1` on the inline fast path, the combined numerator/denominator limb count
    /// scaled to 128-bit units otherwise. Cheap (no allocation); used by the exact
    /// LP basis to decide when accumulated eta-file entries have grown expensive
    /// enough that a fresh factorization pays for itself.
    pub fn storage_weight(&self) -> usize {
        match &self.repr {
            Repr::Small(..) => 1,
            Repr::Big(n, d) => 1 + (n.bits() + d.bits()) / 128,
        }
    }

    /// Numerator (sign-carrying).
    pub fn numerator(&self) -> BigInt {
        match &self.repr {
            Repr::Small(n, _) => BigInt::from(*n),
            Repr::Big(n, _) => n.clone(),
        }
    }

    /// Denominator (always strictly positive).
    pub fn denominator(&self) -> BigInt {
        match &self.repr {
            Repr::Small(_, d) => BigInt::from(*d),
            Repr::Big(_, d) => d.clone(),
        }
    }

    /// Returns `true` if this value is zero.
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small(n, _) => *n == 0,
            Repr::Big(n, _) => n.is_zero(),
        }
    }

    /// Returns `true` if this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small(n, _) => *n < 0,
            Repr::Big(n, _) => n.is_negative(),
        }
    }

    /// Returns `true` if this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        match &self.repr {
            Repr::Small(n, _) => *n > 0,
            Repr::Big(n, _) => n.is_positive(),
        }
    }

    /// Returns `true` if the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        match &self.repr {
            Repr::Small(_, d) => *d == 1,
            Repr::Big(_, d) => *d == BigInt::one(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        if self.is_negative() {
            -self.clone()
        } else {
            self.clone()
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        match &self.repr {
            Repr::Small(n, d) => Rational::small(*d, *n),
            Repr::Big(n, d) => Rational::from_bigints(d.clone(), n.clone()),
        }
    }

    /// Largest integer less than or equal to the value.
    pub fn floor(&self) -> BigInt {
        match &self.repr {
            // `den > 0`, so Euclidean division is exactly the floor.
            Repr::Small(n, d) => BigInt::from(n.div_euclid(*d)),
            Repr::Big(n, d) => {
                let (q, r) = n.div_rem(d);
                if r.is_zero() || !n.is_negative() {
                    q
                } else {
                    &q - &BigInt::one()
                }
            }
        }
    }

    /// Smallest integer greater than or equal to the value.
    pub fn ceil(&self) -> BigInt {
        match &self.repr {
            Repr::Small(n, d) => {
                let q = n.div_euclid(*d);
                if n.rem_euclid(*d) == 0 {
                    BigInt::from(q)
                } else {
                    &BigInt::from(q) + &BigInt::one()
                }
            }
            Repr::Big(n, d) => {
                let (q, r) = n.div_rem(d);
                if r.is_zero() || n.is_negative() {
                    q
                } else {
                    &q + &BigInt::one()
                }
            }
        }
    }

    /// Rounds to the nearest integer (half away from zero).
    pub fn round(&self) -> BigInt {
        let two = Rational::from_int(2);
        if self.is_negative() {
            -((&-self.clone() + &(Rational::one() / two)).floor())
        } else {
            (self + &(Rational::one() / two)).floor()
        }
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(n, d) => *n as f64 / *d as f64,
            Repr::Big(num, den) => {
                let n = num.to_f64();
                let d = den.to_f64();
                if n.is_finite() && d.is_finite() && d != 0.0 {
                    n / d
                } else {
                    // Fall back to a digit-level approximation for extreme magnitudes.
                    let bits = num.bits() as i64 - den.bits() as i64;
                    if num.is_negative() {
                        -(2f64.powi(bits.clamp(-1000, 1000) as i32))
                    } else {
                        2f64.powi(bits.clamp(-1000, 1000) as i32)
                    }
                }
            }
        }
    }

    /// Creates a rational that approximates an `f64` exactly (binary expansion).
    ///
    /// # Panics
    ///
    /// Panics if the input is NaN or infinite.
    pub fn from_f64(v: f64) -> Rational {
        assert!(v.is_finite(), "cannot convert non-finite float to rational");
        if v == 0.0 {
            return Rational::zero();
        }
        let bits = v.to_bits();
        let sign: i128 = if bits >> 63 == 1 { -1 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = if exponent == 0 {
            (bits & 0xf_ffff_ffff_ffff) << 1
        } else {
            (bits & 0xf_ffff_ffff_ffff) | 0x10_0000_0000_0000
        };
        // value = sign * mantissa * 2^(exponent - 1075); the mantissa is 53 bits, so
        // shifts up to 74 (below) / down to 127 stay within i128.
        let shift = exponent - 1075;
        let m = sign * mantissa as i128;
        if (0..=73).contains(&shift) {
            // |m| < 2^53 and the factor is at most 2^73, so the product fits i128.
            return Rational::small(m * (1i128 << shift), 1);
        }
        if (-126..0).contains(&shift) {
            return Rational::small(m, 1i128 << (-shift));
        }
        let mut num = BigInt::from(m);
        let mut den = BigInt::one();
        if shift >= 0 {
            num = &num * &BigInt::from(2i64).pow(shift as u32);
        } else {
            den = BigInt::from(2i64).pow((-shift) as u32);
        }
        Rational::from_bigints(num, den)
    }

    /// Returns the smaller of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Raise to a small non-negative power.
    ///
    /// A reduced fraction's power is automatically reduced (and keeps its positive
    /// denominator), so both arms skip the gcd normalization entirely.
    pub fn pow(&self, exp: u32) -> Rational {
        match &self.repr {
            Repr::Small(n, d) => match (n.checked_pow(exp), d.checked_pow(exp)) {
                (Some(num), Some(den)) => Rational { repr: Repr::Small(num, den) },
                _ => Rational {
                    repr: Repr::Big(BigInt::from(*n).pow(exp), BigInt::from(*d).pow(exp)),
                },
            },
            Repr::Big(n, d) => {
                if exp == 0 {
                    return Rational::one();
                }
                // A canonical Big value has a component beyond i128; its power
                // (exp ≥ 1) is at least as large, so no demotion check is needed.
                Rational { repr: Repr::Big(n.pow(exp), d.pow(exp)) }
            }
        }
    }

    /// The value as a reduced `(numerator, denominator)` BigInt pair.
    fn to_bigint_pair(&self) -> (BigInt, BigInt) {
        match &self.repr {
            Repr::Small(n, d) => (BigInt::from(*n), BigInt::from(*d)),
            Repr::Big(n, d) => (n.clone(), d.clone()),
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Rational {
        Rational::from_int(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Rational {
        match v.to_i128() {
            Some(n) => Rational { repr: Repr::Small(n, 1) },
            None => Rational { repr: Repr::Big(v, BigInt::one()) },
        }
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a"`, `"a/b"`, or a decimal literal `"a.b"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseRationalError { kind: "zero denominator".into() });
            }
            return Ok(Rational::from_bigints(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            if frac_part.is_empty() || !frac_part.chars().all(|c| c.is_ascii_digit()) {
                return Err(ParseRationalError { kind: "bad fractional part".into() });
            }
            let frac: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10i64).pow(frac_part.len() as u32);
            let mag = &(&int.abs() * &scale) + &frac;
            let num = if negative { -mag } else { mag };
            return Ok(Rational::from_bigints(num, scale));
        }
        Ok(Rational::from(s.parse::<BigInt>()?))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(n, d) => {
                if *d == 1 {
                    write!(f, "{n}")
                } else {
                    write!(f, "{n}/{d}")
                }
            }
            Repr::Big(n, d) => {
                if self.is_integer() {
                    write!(f, "{n}")
                } else {
                    write!(f, "{n}/{d}")
                }
            }
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({})", self)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &other.repr) {
            // Cheap screens first: sign classes, then equal denominators.
            match (an.signum(), bn.signum()) {
                (x, y) if x < y => return Ordering::Less,
                (x, y) if x > y => return Ordering::Greater,
                (0, 0) => return Ordering::Equal,
                _ => {}
            }
            if ad == bd {
                return an.cmp(bn);
            }
            if let (Some(lhs), Some(rhs)) = (an.checked_mul(*bd), bn.checked_mul(*ad)) {
                return lhs.cmp(&rhs);
            }
        }
        let (an, ad) = self.to_bigint_pair();
        let (bn, bd) = other.to_bigint_pair();
        (&an * &bd).cmp(&(&bn * &ad))
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        match self.repr {
            Repr::Small(n, d) => match n.checked_neg() {
                Some(n) => Rational { repr: Repr::Small(n, d) },
                None => Rational::from_bigints(-BigInt::from(n), BigInt::from(d)),
            },
            Repr::Big(n, d) => Rational::from_bigints(-n, d),
        }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

/// The big-arithmetic fallback shared by `+`/`-`/`*`/`/` when the `i128` path
/// overflows (or an operand is already big).
fn big_add(a: &Rational, b: &Rational) -> Rational {
    let (an, ad) = a.to_bigint_pair();
    let (bn, bd) = b.to_bigint_pair();
    Rational::from_bigints(&(&an * &bd) + &(&bn * &ad), &ad * &bd)
}

fn big_mul(a: &Rational, b: &Rational) -> Rational {
    let (an, ad) = a.to_bigint_pair();
    let (bn, bd) = b.to_bigint_pair();
    Rational::from_bigints(&an * &bn, &ad * &bd)
}

fn big_div(a: &Rational, b: &Rational) -> Rational {
    let (an, ad) = a.to_bigint_pair();
    let (bn, bd) = b.to_bigint_pair();
    Rational::from_bigints(&an * &bd, &ad * &bn)
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &rhs.repr) {
            // Fast outs for the most common operands in LP pivoting.
            if *an == 0 {
                return rhs.clone();
            }
            if *bn == 0 {
                return self.clone();
            }
            // Knuth's reduced cross-multiplication: dividing both denominators by
            // their gcd first keeps the intermediates (and overflow frequency) down.
            if let Some(g) = gcd_i128(*ad, *bd) {
                let (adg, bdg) = (ad / g, bd / g);
                let num = an
                    .checked_mul(bdg)
                    .and_then(|l| bn.checked_mul(adg).and_then(|r| l.checked_add(r)));
                let den = adg.checked_mul(*bd);
                if let (Some(num), Some(den)) = (num, den) {
                    return Rational::small(num, den);
                }
            }
        }
        big_add(self, rhs)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &rhs.repr) {
            if *bn == 0 {
                return self.clone();
            }
            if let Some(g) = gcd_i128(*ad, *bd) {
                let (adg, bdg) = (ad / g, bd / g);
                let num = an
                    .checked_mul(bdg)
                    .and_then(|l| bn.checked_mul(adg).and_then(|r| l.checked_sub(r)));
                let den = adg.checked_mul(*bd);
                if let (Some(num), Some(den)) = (num, den) {
                    return Rational::small(num, den);
                }
            }
        }
        self + &(-rhs.clone())
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &rhs.repr) {
            if *an == 0 || *bn == 0 {
                return Rational::zero();
            }
            // Cross-reduce before multiplying: gcd(|a_n|, b_d) and gcd(|b_n|, a_d)
            // divide out, so the products are already fully reduced (each numerator
            // factor is coprime to each denominator factor) and much less likely to
            // overflow.
            if let (Some(g1), Some(g2)) = (gcd_i128(*an, *bd), gcd_i128(*bn, *ad)) {
                let num = (an / g1).checked_mul(bn / g2);
                let den = (ad / g2).checked_mul(bd / g1);
                if let (Some(num), Some(den)) = (num, den) {
                    return Rational::small_coprime(num, den);
                }
            }
        }
        big_mul(self, rhs)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "rational division by zero");
        if let (Repr::Small(an, ad), Repr::Small(bn, bd)) = (&self.repr, &rhs.repr) {
            if *an == 0 {
                return Rational::zero();
            }
            if let (Some(g1), Some(g2)) = (gcd_i128(*an, *bn), gcd_i128(*ad, *bd)) {
                let num = (an / g1).checked_mul(bd / g2);
                let den = (ad / g2).checked_mul(bn / g1);
                if let (Some(num), Some(den)) = (num, den) {
                    // Already coprime by the same cross-reduction argument; the
                    // denominator carries `bn`'s sign, which small_coprime fixes.
                    return Rational::small_coprime(num, den);
                }
            }
        }
        big_div(self, rhs)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = &*self - &rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = &*self * &rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    /// A deterministic grid of rationals covering signs, integers, and ratios with
    /// shared and coprime factors (offline stand-in for property testing).
    fn sample_rationals() -> Vec<Rational> {
        let numerators = [-1000i64, -999, -17, -3, -1, 0, 1, 2, 5, 64, 501, 999];
        let denominators = [1i64, 2, 3, 7, 64, 99, 1000];
        let mut samples = Vec::new();
        for n in numerators {
            for d in denominators {
                samples.push(r(n, d));
            }
        }
        samples
    }

    #[test]
    fn normalization() {
        assert_eq!(r(6, 8), r(3, 4));
        assert_eq!(r(6, -8), r(-3, 4));
        assert_eq!(r(-6, -8), r(3, 4));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(0, -5), Rational::zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(-r(2, 3), r(-2, 3));
    }

    #[test]
    fn comparisons() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil_round() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3i64));
        assert_eq!(r(5, 2).round(), BigInt::from(3i64));
        assert_eq!(r(-5, 2).round(), BigInt::from(-3i64));
        assert_eq!(r(9, 4).round(), BigInt::from(2i64));
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(r(3, 4).to_string(), "3/4");
        assert_eq!(r(8, 4).to_string(), "2");
        assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("7".parse::<Rational>().unwrap(), r(7, 1));
        assert_eq!("2.5".parse::<Rational>().unwrap(), r(5, 2));
        assert_eq!("-0.25".parse::<Rational>().unwrap(), r(-1, 4));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x".parse::<Rational>().is_err());
    }

    #[test]
    fn f64_conversions() {
        assert_eq!(Rational::from_f64(0.5), r(1, 2));
        assert_eq!(Rational::from_f64(-0.25), r(-1, 4));
        assert_eq!(Rational::from_f64(3.0), r(3, 1));
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(Rational::from_f64(0.0), Rational::zero());
        // Tiny and huge doubles exercise the shift edges of the small path.
        assert_eq!(Rational::from_f64(2f64.powi(-100)).to_f64(), 2f64.powi(-100));
        assert_eq!(Rational::from_f64(2f64.powi(100)).to_f64(), 2f64.powi(100));
        // Beyond the inline shifts the conversion stays exact even though it takes
        // the BigInt route (2^200 · 19 is a 205-bit numerator).
        let big = Rational::from_f64(19.0) * Rational::from(BigInt::from(2i64).pow(200));
        assert_eq!(big.numerator(), &BigInt::from(19i64) * &BigInt::from(2i64).pow(200));
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
        assert_eq!(r(2, 3).pow(3), r(8, 27));
        assert_eq!(r(2, 3).pow(0), Rational::one());
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).min(r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max(r(1, 3)), r(1, 2));
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += r(1, 3);
        assert_eq!(x, r(5, 6));
        x -= r(1, 6);
        assert_eq!(x, r(2, 3));
        x *= r(3, 2);
        assert_eq!(x, Rational::one());
    }

    #[test]
    fn add_commutes_and_sub_is_add_neg() {
        let samples = sample_rationals();
        for x in &samples {
            for y in &samples {
                assert_eq!(x + y, y + x);
                assert_eq!(x - y, x + &(-y.clone()));
            }
        }
    }

    #[test]
    fn add_is_associative() {
        let samples = sample_rationals();
        // A coarser sub-grid keeps the triple loop fast.
        let subset: Vec<&Rational> = samples.iter().step_by(5).collect();
        for &x in &subset {
            for &y in &subset {
                for &z in &subset {
                    assert_eq!(&(x + y) + z, x + &(y + z));
                }
            }
        }
    }

    #[test]
    fn mul_inverse_gives_one() {
        for x in sample_rationals() {
            if !x.is_zero() {
                assert_eq!(&x * &x.recip(), Rational::one());
            }
        }
    }

    #[test]
    fn floor_le_value_le_ceil() {
        for x in sample_rationals() {
            let fl = Rational::from(x.floor());
            let ce = Rational::from(x.ceil());
            assert!(fl <= x && x <= ce);
            assert!(&ce - &fl <= Rational::one());
        }
    }

    #[test]
    fn f64_roundtrip_close() {
        for x in sample_rationals() {
            let back = Rational::from_f64(x.to_f64());
            let diff = (&x - &back).abs();
            assert!(diff < r(1, 1_000_000), "roundtrip drift for {x}");
        }
    }

    #[test]
    fn ordering_consistent_with_f64() {
        let samples = sample_rationals();
        for x in &samples {
            for y in &samples {
                if x < y {
                    assert!(x.to_f64() <= y.to_f64());
                }
            }
        }
    }

    // ----- i128 fast-path specifics ---------------------------------------------------

    /// A value beyond i128 (2^200) forced through the big path.
    fn huge() -> Rational {
        Rational::from(BigInt::from(2i64).pow(200))
    }

    #[test]
    fn small_values_stay_inline() {
        assert!(r(355, 113).is_small());
        assert!((r(999, 1000) + r(1, 3)).is_small());
        assert!(Rational::from_f64(1.0 / 3.0f64.sqrt()).is_small());
        assert!(!huge().is_small());
    }

    #[test]
    fn overflow_promotes_and_reduction_demotes() {
        // (2^100 / 3) * (3 / 2^100) = 1 — the product overflows i128 before the
        // cross-reduction brings it back; either way the result must be inline.
        let a = Rational::from_bigints(BigInt::from(2i64).pow(100), BigInt::from(3i64));
        assert!(a.is_small(), "2^100/3 fits i128");
        let b = a.recip();
        assert_eq!(&a * &b, Rational::one());
        assert!((&a * &b).is_small());
        // Squaring 2^100/3 exceeds i128 and must promote without losing exactness.
        let sq = &a * &a;
        assert!(!sq.is_small());
        assert_eq!(sq.numerator(), BigInt::from(2i64).pow(200));
        assert_eq!(sq.denominator(), BigInt::from(9i64));
        // Dividing back demotes to the inline form again (canonical representation).
        let back = &sq / &a;
        assert!(back.is_small());
        assert_eq!(back, a);
    }

    #[test]
    fn mixed_repr_arithmetic_is_exact() {
        let h = huge();
        let one = Rational::one();
        assert_eq!(&(&h + &one) - &h, one);
        assert_eq!(&h - &h, Rational::zero());
        assert_eq!(&(&h * &r(3, 7)) / &r(3, 7), h);
        assert!(h > r(1_000_000, 1));
        assert!(-h.clone() < r(-1_000_000, 1));
    }

    #[test]
    fn equality_and_hash_are_representation_independent() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // The same value built through the big constructor and the small one.
        let via_big = Rational::from_bigints(
            &BigInt::from(2i64).pow(150) * &BigInt::from(6i64),
            &BigInt::from(2i64).pow(150) * &BigInt::from(4i64),
        );
        let via_small = r(3, 2);
        assert!(via_big.is_small(), "reduction must demote to the inline form");
        assert_eq!(via_big, via_small);
        let hash = |v: &Rational| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&via_big), hash(&via_small));
    }

    #[test]
    fn extreme_i128_magnitudes_survive() {
        let min = Rational::from(BigInt::from(i128::MIN));
        assert!(min.is_small());
        let negated = -min.clone();
        assert_eq!(&negated + &min, Rational::zero());
        assert_eq!(&min * &r(1, 1), min);
        assert!((&min - &Rational::one()) < min);
        assert_eq!(min.floor(), BigInt::from(i128::MIN));
        assert_eq!(min.ceil(), BigInt::from(i128::MIN));
    }

    #[test]
    fn gcd_helpers() {
        assert_eq!(gcd_u128(0, 7), 7);
        assert_eq!(gcd_u128(48, 36), 12);
        assert_eq!(gcd_i128(-48, 36), Some(12));
        assert_eq!(gcd_i128(i128::MIN, 0), None);
        assert_eq!(gcd_i128(i128::MIN, 3), Some(1));
    }
}
