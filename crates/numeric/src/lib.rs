//! Exact arbitrary-precision arithmetic for the diffcost analyzer.
//!
//! The differential cost analysis pipeline manipulates polynomial coefficients and
//! linear-programming tableaux whose intermediate values can exceed machine integers.
//! This crate provides:
//!
//! * [`BigInt`] — a sign-magnitude arbitrary-precision integer, and
//! * [`Rational`] — a normalized arbitrary-precision fraction built on top of it.
//!
//! Both types are implemented from scratch (no external numeric dependencies) and are
//! deliberately simple: schoolbook multiplication and binary long division are more than
//! fast enough for the problem sizes produced by the analysis (coefficients of small
//! polynomial templates and LP pivots on a few thousand variables).
//!
//! # Examples
//!
//! ```
//! use dca_numeric::{BigInt, Rational};
//!
//! let a = BigInt::from(123456789i64);
//! let b = BigInt::from(987654321i64);
//! assert_eq!((&a * &b).to_string(), "121932631112635269");
//!
//! let half = Rational::new(1, 2);
//! let third = Rational::new(1, 3);
//! assert_eq!(&half + &third, Rational::new(5, 6));
//! ```

mod bigint;
mod rational;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use rational::{ParseRationalError, Rational};

/// Greatest common divisor of two non-negative machine integers.
///
/// Exposed as a convenience for other crates (e.g. normalizing small affine constraints
/// without going through [`BigInt`]).
///
/// ```
/// assert_eq!(dca_numeric::gcd_u64(12, 18), 6);
/// assert_eq!(dca_numeric::gcd_u64(0, 7), 7);
/// ```
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Greatest common divisor of two signed machine integers (result is non-negative).
///
/// ```
/// assert_eq!(dca_numeric::gcd_i64(-12, 18), 6);
/// ```
pub fn gcd_i64(a: i64, b: i64) -> i64 {
    gcd_u64(a.unsigned_abs(), b.unsigned_abs()) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_u64_basic() {
        assert_eq!(gcd_u64(0, 0), 0);
        assert_eq!(gcd_u64(1, 0), 1);
        assert_eq!(gcd_u64(0, 1), 1);
        assert_eq!(gcd_u64(48, 36), 12);
        assert_eq!(gcd_u64(17, 5), 1);
    }

    #[test]
    fn gcd_i64_signs() {
        assert_eq!(gcd_i64(-4, -6), 2);
        assert_eq!(gcd_i64(4, -6), 2);
        assert_eq!(gcd_i64(i64::MIN + 1, 3), 1);
    }
}
