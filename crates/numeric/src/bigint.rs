//! Sign-magnitude arbitrary-precision integers.
//!
//! The magnitude is stored as little-endian `u32` limbs (base 2^32) with no trailing
//! zero limbs; a zero value has an empty limb vector and [`Sign::Zero`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// Error returned when parsing a [`BigInt`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: &'static str,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.kind)
    }
}

impl std::error::Error for ParseBigIntError {}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use dca_numeric::BigInt;
/// let a: BigInt = "123456789012345678901234567890".parse().unwrap();
/// let b = BigInt::from(2i64);
/// assert_eq!((&a * &b).to_string(), "246913578024691357802469135780");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian base-2^32 limbs; empty iff the value is zero.
    limbs: Vec<u32>,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> BigInt {
        BigInt { sign: Sign::Zero, limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> BigInt {
        BigInt::from(1i64)
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns the sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        let mut out = self.clone();
        if out.sign == Sign::Negative {
            out.sign = Sign::Positive;
        }
        out
    }

    fn from_limbs(sign: Sign, mut limbs: Vec<u32>) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, limbs }
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` of the magnitude (bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let s = limb as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Subtract magnitudes, requires `a >= b`.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(BigInt::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &limb) in a.iter().enumerate() {
            let d = limb as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        out
    }

    /// Shift magnitude left by one bit in place.
    fn shl1_mag(limbs: &mut Vec<u32>) {
        let mut carry = 0u32;
        for l in limbs.iter_mut() {
            let new_carry = *l >> 31;
            *l = (*l << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            limbs.push(carry);
        }
    }

    /// Divide magnitudes via binary long division, returns `(quotient, remainder)`.
    fn divrem_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if BigInt::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        // Fast path: single-limb divisor.
        if b.len() == 1 {
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem = 0u64;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 { Vec::new() } else { vec![rem as u32] };
            return (q, r);
        }
        let abits = {
            let top = *a.last().unwrap();
            (a.len() - 1) * 32 + (32 - top.leading_zeros() as usize)
        };
        let mut rem: Vec<u32> = Vec::new();
        let mut quo = vec![0u32; a.len()];
        for i in (0..abits).rev() {
            BigInt::shl1_mag(&mut rem);
            let limb = i / 32;
            let off = i % 32;
            if (a[limb] >> off) & 1 == 1 {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if BigInt::cmp_mag(&rem, b) != Ordering::Less {
                rem = BigInt::sub_mag(&rem, b);
                while rem.last() == Some(&0) {
                    rem.pop();
                }
                quo[i / 32] |= 1 << (i % 32);
            }
        }
        while quo.last() == Some(&0) {
            quo.pop();
        }
        (quo, rem)
    }

    /// Truncated division with remainder: `self = q * other + r` with `|r| < |other|` and
    /// `r` having the sign of `self` (or zero).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (qm, rm) = BigInt::divrem_mag(&self.limbs, &other.limbs);
        let qsign = if qm.is_empty() {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let rsign = if rm.is_empty() { Sign::Zero } else { self.sign };
        (BigInt::from_limbs(qsign, qm), BigInt::from_limbs(rsign, rm))
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Raise to a small non-negative power.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mut result = BigInt::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        result
    }

    /// Convert to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.limbs.len() > 2 {
            return None;
        }
        let mag: u128 = self
            .limbs
            .iter()
            .enumerate()
            .map(|(i, &l)| (l as u128) << (32 * i))
            .sum();
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if mag <= i64::MAX as u128 {
                    Some(mag as i64)
                } else {
                    None
                }
            }
            Sign::Negative => {
                if mag <= i64::MAX as u128 + 1 {
                    Some((mag as i128).wrapping_neg() as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Convert to `i128` if the value fits (used by [`crate::Rational`]'s inline
    /// small-value representation to demote reduced big fractions).
    pub fn to_i128(&self) -> Option<i128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut mag: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            mag |= (l as u128) << (32 * i);
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if mag <= i128::MAX as u128 {
                    Some(mag as i128)
                } else {
                    None
                }
            }
            Sign::Negative => {
                if mag <= i128::MAX as u128 + 1 {
                    Some((mag as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Convert to `f64` (may lose precision; huge values map to ±inf).
    pub fn to_f64(&self) -> f64 {
        let mut value = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            value = value * 4294967296.0 + limb as f64;
        }
        match self.sign {
            Sign::Negative => -value,
            _ => value,
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v < 0 { Sign::Negative } else { Sign::Positive };
        let mut mag = v.unsigned_abs();
        let mut limbs = Vec::new();
        while mag != 0 {
            limbs.push(mag as u32);
            mag >>= 32;
        }
        BigInt { sign, limbs }
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError { kind: "empty string" });
        }
        let mut value = BigInt::zero();
        let ten = BigInt::from(10i64);
        for ch in digits.chars() {
            let d = ch.to_digit(10).ok_or(ParseBigIntError { kind: "non-digit character" })?;
            value = &(&value * &ten) + &BigInt::from(d as i64);
        }
        if neg {
            value = -value;
        }
        Ok(value)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.limbs.clone();
        let ten = [10u32];
        while !mag.is_empty() {
            let (q, r) = BigInt::divrem_mag(&mag, &ten);
            digits.push(r.first().copied().unwrap_or(0) as u8 + b'0');
            mag = q;
        }
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        for d in digits.iter().rev() {
            write!(f, "{}", *d as char)?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => BigInt::cmp_mag(&other.limbs, &self.limbs),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => BigInt::cmp_mag(&self.limbs, &other.limbs),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.flip();
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => {
                BigInt::from_limbs(a, BigInt::add_mag(&self.limbs, &rhs.limbs))
            }
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match BigInt::cmp_mag(&self.limbs, &rhs.limbs) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt::from_limbs(
                        self.sign,
                        BigInt::sub_mag(&self.limbs, &rhs.limbs),
                    ),
                    Ordering::Less => BigInt::from_limbs(
                        rhs.sign,
                        BigInt::sub_mag(&rhs.limbs, &self.limbs),
                    ),
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign { Sign::Positive } else { Sign::Negative };
        BigInt::from_limbs(sign, BigInt::mul_mag(&self.limbs, &rhs.limbs))
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    /// A deterministic stream of interesting test values: boundary cases first, then a
    /// spread of pseudo-random values (xorshift; offline stand-in for property testing).
    fn sample_values(count: usize) -> Vec<i64> {
        let mut values = vec![0, 1, -1, i64::MAX, i64::MIN, i64::MAX - 1, i64::MIN + 1];
        let mut state = 0x853C49E6748FEA9Bu64;
        while values.len() < count {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            values.push(state.wrapping_mul(0x2545F4914F6CDD1D) as i64);
        }
        values.truncate(count);
        values
    }

    #[test]
    fn zero_properties() {
        let z = BigInt::zero();
        assert!(z.is_zero());
        assert!(!z.is_negative());
        assert!(!z.is_positive());
        assert_eq!(z.to_string(), "0");
        assert_eq!(z.to_i64(), Some(0));
        assert_eq!(z.bits(), 0);
    }

    #[test]
    fn roundtrip_display_parse() {
        for v in [0i128, 1, -1, 42, -42, i64::MAX as i128, i64::MIN as i128, 1 << 100] {
            let b = bi(v);
            let parsed: BigInt = b.to_string().parse().unwrap();
            assert_eq!(parsed, b, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("abc".parse::<BigInt>().is_err());
        assert!("12x".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("+5".parse::<BigInt>().unwrap() == bi(5));
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(bi(2) + bi(3), bi(5));
        assert_eq!(bi(2) - bi(3), bi(-1));
        assert_eq!(bi(-2) + bi(-3), bi(-5));
        assert_eq!(bi(-2) - bi(-3), bi(1));
        assert_eq!(bi(7) + bi(-7), BigInt::zero());
    }

    #[test]
    fn mul_small() {
        assert_eq!(bi(6) * bi(7), bi(42));
        assert_eq!(bi(-6) * bi(7), bi(-42));
        assert_eq!(bi(-6) * bi(-7), bi(42));
        assert_eq!(bi(0) * bi(7), BigInt::zero());
    }

    #[test]
    fn large_multiplication() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let b: BigInt = "987654321098765432109876543210".parse().unwrap();
        let p = &a * &b;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = bi(17).div_rem(&bi(5));
        assert_eq!((q, r), (bi(3), bi(2)));
        let (q, r) = bi(-17).div_rem(&bi(5));
        assert_eq!((q, r), (bi(-3), bi(-2)));
        let (q, r) = bi(17).div_rem(&bi(-5));
        assert_eq!((q, r), (bi(-3), bi(2)));
        let (q, r) = bi(-17).div_rem(&bi(-5));
        assert_eq!((q, r), (bi(3), bi(-2)));
    }

    #[test]
    fn div_rem_large() {
        let a: BigInt = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        let b: BigInt = "18446744073709551616".parse().unwrap(); // 2^64
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = bi(1).div_rem(&BigInt::zero());
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(bi(48).gcd(&bi(36)), bi(12));
        assert_eq!(bi(-48).gcd(&bi(36)), bi(12));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(5).gcd(&bi(0)), bi(5));
    }

    #[test]
    fn pow_basic() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(-3).pow(3), bi(-27));
        assert_eq!(bi(7).pow(0), bi(1));
        assert_eq!(bi(2).pow(100).to_string(), "1267650600228229401496703205376");
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-1));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(1) < bi(5));
        assert!(bi(1 << 70) > bi(1 << 60));
        assert!(bi(-(1 << 70)) < bi(-(1 << 60)));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(bi(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(bi(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(bi(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(bi(i64::MIN as i128 - 1).to_i64(), None);
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(bi(42).to_f64(), 42.0);
        assert_eq!(bi(-42).to_f64(), -42.0);
        let big = bi(1i128 << 100);
        assert!((big.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100) < 1e-12);
    }

    #[test]
    fn bit_width() {
        assert_eq!(bi(1).bits(), 1);
        assert_eq!(bi(2).bits(), 2);
        assert_eq!(bi(255).bits(), 8);
        assert_eq!(bi(256).bits(), 9);
        assert_eq!(bi(1 << 40).bits(), 41);
        assert!(bi(5).bit(0) && !bi(5).bit(1) && bi(5).bit(2));
    }

    #[test]
    fn add_commutes_and_matches_i128() {
        let values = sample_values(24);
        for &a in &values {
            for &b in &values {
                assert_eq!(bi(a as i128) + bi(b as i128), bi(b as i128) + bi(a as i128));
                assert_eq!(bi(a as i128) + bi(b as i128), bi(a as i128 + b as i128));
            }
        }
    }

    #[test]
    fn mul_matches_i128() {
        let values = sample_values(24);
        for &a in &values {
            for &b in &values {
                let (a, b) = (a as i128 % 1_000_000_000, b as i128 % 1_000_000_000);
                assert_eq!(bi(a) * bi(b), bi(a * b));
            }
        }
    }

    #[test]
    fn divrem_reconstructs() {
        let values = sample_values(24);
        for &a in &values {
            for &b in &values {
                if b == 0 {
                    continue;
                }
                let (q, r) = bi(a as i128).div_rem(&bi(b as i128));
                assert_eq!(&q * &bi(b as i128) + &r, bi(a as i128));
                assert!(r.abs() < bi(b as i128).abs());
            }
        }
    }

    #[test]
    fn mul_distributes_over_add() {
        let values = sample_values(16);
        for &a in &values {
            for &b in &values {
                for &c in &values {
                    let (a, b, c) = (
                        bi(a as i128 % 10_000),
                        bi(b as i128 % 10_000),
                        bi(c as i128 % 10_000),
                    );
                    assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
                }
            }
        }
    }

    #[test]
    fn roundtrip_string_on_samples() {
        for &a in &sample_values(64) {
            // Widen into genuinely multi-limb territory as well.
            for value in [a as i128, (a as i128) << 40, i128::MAX, i128::MIN] {
                let b = bi(value);
                assert_eq!(b.to_string().parse::<BigInt>().unwrap(), b);
            }
        }
    }

    #[test]
    fn gcd_divides_both_operands() {
        for &a in &sample_values(24) {
            for &b in &sample_values(24) {
                let (a, b) = (a.unsigned_abs() % 100_000 + 1, b.unsigned_abs() % 100_000 + 1);
                let g = bi(a as i128).gcd(&bi(b as i128));
                assert!((bi(a as i128) % &g).is_zero());
                assert!((bi(b as i128) % &g).is_zero());
            }
        }
    }
}
