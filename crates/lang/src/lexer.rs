//! Tokenizer for the mini-language.

use std::fmt;

/// The kind of a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Source line number (1-based).
    pub line: usize,
}

/// Error produced during tokenization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub character: char,
    /// Source line (1-based).
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character `{}` on line {}", self.character, self.line)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes source text. `//` line comments and `/* ... */` block comments are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] on the first character that cannot start a token.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut index = 0usize;
    let mut line = 1usize;
    while index < chars.len() {
        let c = chars[index];
        match c {
            '\n' => {
                line += 1;
                index += 1;
            }
            c if c.is_whitespace() => index += 1,
            '/' if chars.get(index + 1) == Some(&'/') => {
                while index < chars.len() && chars[index] != '\n' {
                    index += 1;
                }
            }
            '/' if chars.get(index + 1) == Some(&'*') => {
                index += 2;
                while index + 1 < chars.len() && !(chars[index] == '*' && chars[index + 1] == '/')
                {
                    if chars[index] == '\n' {
                        line += 1;
                    }
                    index += 1;
                }
                index = (index + 2).min(chars.len());
            }
            c if c.is_ascii_digit() => {
                let start = index;
                while index < chars.len() && chars[index].is_ascii_digit() {
                    index += 1;
                }
                let text: String = chars[start..index].iter().collect();
                let value = text.parse::<i64>().unwrap_or(i64::MAX);
                tokens.push(Token { kind: TokenKind::Int(value), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = index;
                while index < chars.len()
                    && (chars[index].is_ascii_alphanumeric() || chars[index] == '_')
                {
                    index += 1;
                }
                let text: String = chars[start..index].iter().collect();
                tokens.push(Token { kind: TokenKind::Ident(text), line });
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, line });
                index += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, line });
                index += 1;
            }
            '{' => {
                tokens.push(Token { kind: TokenKind::LBrace, line });
                index += 1;
            }
            '}' => {
                tokens.push(Token { kind: TokenKind::RBrace, line });
                index += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, line });
                index += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, line });
                index += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, line });
                index += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, line });
                index += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, line });
                index += 1;
            }
            '<' => {
                if chars.get(index + 1) == Some(&'=') {
                    tokens.push(Token { kind: TokenKind::Le, line });
                    index += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, line });
                    index += 1;
                }
            }
            '>' => {
                if chars.get(index + 1) == Some(&'=') {
                    tokens.push(Token { kind: TokenKind::Ge, line });
                    index += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, line });
                    index += 1;
                }
            }
            '=' => {
                if chars.get(index + 1) == Some(&'=') {
                    tokens.push(Token { kind: TokenKind::EqEq, line });
                    index += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Assign, line });
                    index += 1;
                }
            }
            '!' => {
                if chars.get(index + 1) == Some(&'=') {
                    tokens.push(Token { kind: TokenKind::Ne, line });
                    index += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Bang, line });
                    index += 1;
                }
            }
            '&' if chars.get(index + 1) == Some(&'&') => {
                tokens.push(Token { kind: TokenKind::AndAnd, line });
                index += 2;
            }
            '|' if chars.get(index + 1) == Some(&'|') => {
                tokens.push(Token { kind: TokenKind::OrOr, line });
                index += 2;
            }
            other => return Err(LexError { character: other, line }),
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_simple_statement() {
        let toks = kinds("x = x + 1;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn two_character_operators() {
        let toks = kinds("<= >= == != && || < > = !");
        assert_eq!(
            toks,
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Assign,
                TokenKind::Bang,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("x // comment\n = /* block \n comment */ 3;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(3),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = tokenize("x\n\ny").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = tokenize("x = $;").unwrap_err();
        assert_eq!(err.character, '$');
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains('$'));
    }
}
