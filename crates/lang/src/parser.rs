//! Recursive-descent parser for the mini-language.

use std::fmt;

use crate::ast::{BinOp, Block, BoolExpr, CmpOp, Expr, Program, Stmt};
use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// Error produced by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: usize,
}

impl ParseError {
    fn new(message: impl Into<String>, line: usize) -> ParseError {
        ParseError { message: message.into(), line }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string(), e.line)
    }
}

/// Parses a complete procedure.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// let p = dca_lang::parse_program("proc f(n) { tick(n); }").unwrap();
/// assert_eq!(p.name, "f");
/// assert_eq!(p.params, vec!["n".to_string()]);
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, position: 0 };
    let program = parser.program()?;
    parser.expect_eof()?;
    Ok(program)
}

struct Parser {
    tokens: Vec<Token>,
    position: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.position].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.position].line
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.position].kind.clone();
        if self.position + 1 < self.tokens.len() {
            self.position += 1;
        }
        kind
    }

    fn expect(&mut self, expected: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == expected {
            self.advance();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {}, found {}", expected, self.peek()),
                self.line(),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected end of input, found {}", self.peek()),
                self.line(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(ParseError::new(format!("expected identifier, found {other}"), self.line())),
        }
    }

    fn is_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(name) if name == keyword)
    }

    fn eat_keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        if self.is_keyword(keyword) {
            self.advance();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected keyword `{keyword}`, found {}", self.peek()),
                self.line(),
            ))
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.eat_keyword("proc")?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            params.push(self.expect_ident()?);
            while *self.peek() == TokenKind::Comma {
                self.advance();
                params.push(self.expect_ident()?);
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Program { name, params, body })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut statements = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            statements.push(self.statement()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(statements)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => match name.as_str() {
                "skip" => {
                    self.advance();
                    self.expect(TokenKind::Semicolon)?;
                    Ok(Stmt::Skip)
                }
                "assume" => {
                    self.advance();
                    self.expect(TokenKind::LParen)?;
                    let condition = self.bool_expr()?;
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Semicolon)?;
                    Ok(Stmt::Assume(condition))
                }
                "tick" => {
                    self.advance();
                    self.expect(TokenKind::LParen)?;
                    let amount = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Semicolon)?;
                    Ok(Stmt::Tick(amount))
                }
                "if" => self.if_statement(),
                "while" => self.while_statement(),
                "for" => self.for_statement(),
                _ => {
                    // Assignment.
                    self.advance();
                    self.expect(TokenKind::Assign)?;
                    let value = self.expr()?;
                    self.expect(TokenKind::Semicolon)?;
                    Ok(Stmt::Assign(name, value))
                }
            },
            other => Err(ParseError::new(format!("expected a statement, found {other}"), self.line())),
        }
    }

    fn if_statement(&mut self) -> Result<Stmt, ParseError> {
        self.eat_keyword("if")?;
        self.expect(TokenKind::LParen)?;
        let condition = self.condition()?;
        self.expect(TokenKind::RParen)?;
        let then_block = self.block()?;
        let else_block = if self.is_keyword("else") {
            self.advance();
            if self.is_keyword("if") {
                vec![self.if_statement()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If(condition, then_block, else_block))
    }

    fn while_statement(&mut self) -> Result<Stmt, ParseError> {
        self.eat_keyword("while")?;
        self.expect(TokenKind::LParen)?;
        let condition = self.condition()?;
        self.expect(TokenKind::RParen)?;
        let mut invariants = Vec::new();
        if self.is_keyword("invariant") {
            self.advance();
            self.expect(TokenKind::LParen)?;
            invariants.push(self.bool_expr()?);
            while *self.peek() == TokenKind::Comma {
                self.advance();
                invariants.push(self.bool_expr()?);
            }
            self.expect(TokenKind::RParen)?;
        }
        let body = self.block()?;
        Ok(Stmt::While(condition, invariants, body))
    }

    /// `for (i = e1; cond; i = e2) { .. }` desugars to `i = e1; while (cond) { ..; i = e2; }`.
    fn for_statement(&mut self) -> Result<Stmt, ParseError> {
        self.eat_keyword("for")?;
        self.expect(TokenKind::LParen)?;
        let init_var = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        let init_value = self.expr()?;
        self.expect(TokenKind::Semicolon)?;
        let condition = self.condition()?;
        self.expect(TokenKind::Semicolon)?;
        let step_var = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        let step_value = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let mut invariants = Vec::new();
        if self.is_keyword("invariant") {
            self.advance();
            self.expect(TokenKind::LParen)?;
            invariants.push(self.bool_expr()?);
            while *self.peek() == TokenKind::Comma {
                self.advance();
                invariants.push(self.bool_expr()?);
            }
            self.expect(TokenKind::RParen)?;
        }
        let mut body = self.block()?;
        body.push(Stmt::Assign(step_var, step_value));
        // The desugared form is returned as a two-statement block wrapped in `If(true, ..)`
        // is unnecessary; instead return a synthetic sequence via a `While` preceded by the
        // init assignment. Since `Stmt` has no sequence node, we encode the pair as an
        // `If(true, [init, while], [])`, which lowers to exactly the same transitions.
        Ok(Stmt::If(
            BoolExpr::True,
            vec![Stmt::Assign(init_var, init_value), Stmt::While(condition, invariants, body)],
            Vec::new(),
        ))
    }

    /// A branch/loop condition: a boolean expression, possibly the non-deterministic `*`.
    fn condition(&mut self) -> Result<BoolExpr, ParseError> {
        self.bool_expr()
    }

    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut left = self.bool_and()?;
        while *self.peek() == TokenKind::OrOr {
            self.advance();
            let right = self.bool_and()?;
            left = BoolExpr::or(left, right);
        }
        Ok(left)
    }

    fn bool_and(&mut self) -> Result<BoolExpr, ParseError> {
        let mut left = self.bool_not()?;
        while *self.peek() == TokenKind::AndAnd {
            self.advance();
            let right = self.bool_not()?;
            left = BoolExpr::and(left, right);
        }
        Ok(left)
    }

    fn bool_not(&mut self) -> Result<BoolExpr, ParseError> {
        if *self.peek() == TokenKind::Bang {
            self.advance();
            let inner = self.bool_not()?;
            return Ok(inner.negate());
        }
        self.bool_atom()
    }

    fn bool_atom(&mut self) -> Result<BoolExpr, ParseError> {
        if self.is_keyword("true") {
            self.advance();
            return Ok(BoolExpr::True);
        }
        if self.is_keyword("false") {
            self.advance();
            return Ok(BoolExpr::False);
        }
        if *self.peek() == TokenKind::Star {
            self.advance();
            return Ok(BoolExpr::Nondet);
        }
        // `(` could open a parenthesized boolean expression or an arithmetic expression;
        // try the boolean reading first and backtrack on failure.
        if *self.peek() == TokenKind::LParen {
            let saved = self.position;
            self.advance();
            if let Ok(inner) = self.bool_expr() {
                if *self.peek() == TokenKind::RParen {
                    // Only accept if what follows cannot continue a comparison.
                    let after = self.tokens[self.position + 1].kind.clone();
                    let continues_arithmetic = matches!(
                        after,
                        TokenKind::Lt
                            | TokenKind::Le
                            | TokenKind::Gt
                            | TokenKind::Ge
                            | TokenKind::EqEq
                            | TokenKind::Ne
                            | TokenKind::Plus
                            | TokenKind::Minus
                            | TokenKind::Star
                    );
                    if !continues_arithmetic {
                        self.advance();
                        return Ok(inner);
                    }
                }
            }
            self.position = saved;
        }
        // Comparison of two arithmetic expressions.
        let left = self.expr()?;
        let op = match self.advance() {
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            other => {
                return Err(ParseError::new(
                    format!("expected a comparison operator, found {other}"),
                    self.line(),
                ))
            }
        };
        let right = self.expr()?;
        Ok(BoolExpr::Cmp(left, op, right))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.term()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.advance();
                    let right = self.term()?;
                    left = Expr::Bin(BinOp::Add, Box::new(left), Box::new(right));
                }
                TokenKind::Minus => {
                    self.advance();
                    let right = self.term()?;
                    left = Expr::Bin(BinOp::Sub, Box::new(left), Box::new(right));
                }
                _ => return Ok(left),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.factor()?;
        while *self.peek() == TokenKind::Star {
            self.advance();
            let right = self.factor()?;
            left = Expr::Bin(BinOp::Mul, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(value) => {
                self.advance();
                Ok(Expr::Int(value))
            }
            TokenKind::Minus => {
                self.advance();
                let inner = self.factor()?;
                Ok(Expr::Neg(Box::new(inner)))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.advance();
                if name == "nondet" {
                    self.expect(TokenKind::LParen)?;
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Nondet)
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError::new(format!("expected an expression, found {other}"), self.line())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_running_example() {
        let source = r#"
            proc join(lenA, lenB) {
                assume(lenA >= 1 && lenA <= 100 && lenB >= 1 && lenB <= 100);
                i = 0;
                while (i < lenA) {
                    j = 0;
                    while (j < lenB) {
                        tick(1);
                        j = j + 1;
                    }
                    i = i + 1;
                }
            }
        "#;
        let program = parse_program(source).unwrap();
        assert_eq!(program.name, "join");
        assert_eq!(program.params, vec!["lenA".to_string(), "lenB".to_string()]);
        assert_eq!(program.body.len(), 3);
        assert!(matches!(program.body[0], Stmt::Assume(_)));
        assert!(matches!(program.body[2], Stmt::While(..)));
    }

    #[test]
    fn parses_if_else_chains() {
        let source = r#"
            proc f(x) {
                if (x > 0) { tick(1); } else if (x == 0) { tick(2); } else { skip; }
            }
        "#;
        let program = parse_program(source).unwrap();
        let Stmt::If(_, then_block, else_block) = &program.body[0] else {
            panic!("expected if");
        };
        assert_eq!(then_block.len(), 1);
        assert_eq!(else_block.len(), 1);
        assert!(matches!(else_block[0], Stmt::If(..)));
    }

    #[test]
    fn parses_nondet_forms() {
        let source = r#"
            proc f(n) {
                x = nondet();
                if (*) { tick(1); }
                while (*) { tick(1); x = x - 1; }
            }
        "#;
        let program = parse_program(source).unwrap();
        assert!(matches!(program.body[0], Stmt::Assign(_, Expr::Nondet)));
        let Stmt::If(condition, ..) = &program.body[1] else { panic!() };
        assert_eq!(*condition, BoolExpr::Nondet);
        let Stmt::While(condition, ..) = &program.body[2] else { panic!() };
        assert_eq!(*condition, BoolExpr::Nondet);
    }

    #[test]
    fn parses_for_loop_sugar() {
        let source = "proc f(n) { for (i = 0; i < n; i = i + 1) { tick(1); } }";
        let program = parse_program(source).unwrap();
        // for desugars to If(true, [init, while], [])
        let Stmt::If(BoolExpr::True, inner, _) = &program.body[0] else {
            panic!("for should desugar to a guarded block");
        };
        assert!(matches!(inner[0], Stmt::Assign(..)));
        let Stmt::While(_, _, body) = &inner[1] else { panic!() };
        assert_eq!(body.len(), 2); // tick + increment
    }

    #[test]
    fn parses_invariant_annotations() {
        let source = "proc f(n) { i = 0; while (i < n) invariant(i >= 0, i <= n) { i = i + 1; } }";
        let program = parse_program(source).unwrap();
        let Stmt::While(_, invariants, _) = &program.body[1] else { panic!() };
        assert_eq!(invariants.len(), 2);
    }

    #[test]
    fn parses_boolean_structure() {
        let source = "proc f(x, y) { assume((x >= 0 || y >= 0) && !(x > 10)); }";
        let program = parse_program(source).unwrap();
        let Stmt::Assume(cond) = &program.body[0] else { panic!() };
        assert!(matches!(cond, BoolExpr::And(..)));
    }

    #[test]
    fn parses_parenthesized_arithmetic_in_comparison() {
        let source = "proc f(x, y) { assume((x + 1) * 2 <= y); }";
        let program = parse_program(source).unwrap();
        let Stmt::Assume(BoolExpr::Cmp(lhs, CmpOp::Le, _)) = &program.body[0] else {
            panic!()
        };
        assert!(matches!(lhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn error_reporting_includes_line() {
        let err = parse_program("proc f(n) {\n  x = ;\n}").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_program("f(n) {}").unwrap_err();
        assert!(err.to_string().contains("proc"));
        let err = parse_program("proc f(n) { tick(1) }").unwrap_err();
        assert!(err.to_string().contains("`;`"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse_program("proc f(n) { skip; } extra").unwrap_err();
        assert!(err.to_string().contains("end of input"));
    }
}
