//! Lowering from the AST to the transition-system model of Section 3.
//!
//! The lowering performs straight-line compression: consecutive assignments and `tick`s
//! are composed into a single transition (sequential composition by substitution), so the
//! number of locations — and therefore the number of template unknowns in the synthesis
//! LP — stays close to the number of control-flow points of the source program.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use dca_ir::{LocId, TransitionSystem, TsBuilder, Update};
use dca_numeric::Rational;
use dca_poly::{LinExpr, Polynomial, VarId};

use crate::ast::{BinOp, BoolExpr, CmpOp, Expr, Program, Stmt};

/// Error produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// `nondet()` used inside a compound expression rather than as a whole right-hand side.
    NondetInExpression(String),
    /// A condition (guard, assume, invariant) is not affine.
    NonAffineCondition(String),
    /// A non-deterministic `*` condition was nested inside a boolean formula.
    NestedNondetCondition(String),
    /// The leading `assume` defining `Θ0` contains a disjunction.
    DisjunctiveTheta0(String),
    /// The underlying transition-system builder rejected the program.
    Builder(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NondetInExpression(e) => {
                write!(f, "nondet() may only be the whole right-hand side: {e}")
            }
            LowerError::NonAffineCondition(e) => {
                write!(f, "condition must be affine (degree <= 1): {e}")
            }
            LowerError::NestedNondetCondition(e) => {
                write!(f, "`*` may only be used as the entire condition: {e}")
            }
            LowerError::DisjunctiveTheta0(e) => {
                write!(f, "the leading assume defining the input set must be a conjunction: {e}")
            }
            LowerError::Builder(e) => write!(f, "malformed program: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// The result of lowering: the transition system plus user-supplied loop invariants.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// The transition system modelling the procedure.
    pub ts: TransitionSystem,
    /// `invariant(...)` annotations, attached to their loop-head locations.
    pub annotations: Vec<(LocId, Vec<LinExpr>)>,
}

/// Lowers a parsed program to a transition system.
///
/// # Errors
///
/// Returns a [`LowerError`] if the program uses `nondet()` inside compound expressions,
/// non-affine conditions, nested `*` conditions, or a disjunctive input assumption.
pub fn lower_program(program: &Program) -> Result<LoweredProgram, LowerError> {
    let mut lowerer = Lowerer::new(program);
    lowerer.run(program)
}

/// A disjunct of a condition in guard normal form: a conjunction of `expr ≥ 0`.
type Disjunct = Vec<LinExpr>;

struct Lowerer {
    builder: TsBuilder,
    vars: HashMap<String, VarId>,
    annotations: Vec<(LocId, Vec<LinExpr>)>,
    location_counter: usize,
}

impl Lowerer {
    fn new(program: &Program) -> Lowerer {
        let mut builder = TsBuilder::new();
        builder.name(&program.name);
        let mut vars = HashMap::new();
        for name in program.all_variables() {
            let id = builder.var(&name);
            vars.insert(name, id);
        }
        Lowerer { builder, vars, annotations: Vec::new(), location_counter: 0 }
    }

    fn fresh_location(&mut self, hint: &str) -> LocId {
        let name = format!("l{}_{}", self.location_counter, hint);
        self.location_counter += 1;
        self.builder.location(&name)
    }

    fn run(&mut self, program: &Program) -> Result<LoweredProgram, LowerError> {
        let entry = self.fresh_location("entry");
        self.builder.set_initial(entry);

        // Leading assume statements define Θ0.
        let mut body_start = 0usize;
        for stmt in &program.body {
            match stmt {
                Stmt::Assume(cond) => {
                    let conjuncts = self.conjunction_only(cond)?;
                    for c in conjuncts {
                        self.builder.add_theta0(c);
                    }
                    body_start += 1;
                }
                _ => break,
            }
        }

        let mut pending: BTreeMap<VarId, Update> = BTreeMap::new();
        let exit = self.lower_block(&program.body[body_start..], entry, &mut pending)?;
        let exit = self.flush(exit, &mut pending);
        let terminal = self.builder.terminal();
        self.builder.transition(exit, terminal).finish();

        let ts = self
            .builder
            .clone()
            .build()
            .map_err(|e| LowerError::Builder(e.to_string()))?;
        Ok(LoweredProgram { ts, annotations: self.annotations.clone() })
    }

    /// Emits the pending straight-line updates (if any) as a single transition and returns
    /// the location reached.
    fn flush(&mut self, from: LocId, pending: &mut BTreeMap<VarId, Update>) -> LocId {
        if pending.is_empty() {
            return from;
        }
        let target = self.fresh_location("step");
        let mut t = self.builder.transition(from, target);
        for (var, update) in std::mem::take(pending) {
            t = t.update(var, update);
        }
        t.finish();
        target
    }

    fn lower_block(
        &mut self,
        block: &[Stmt],
        entry: LocId,
        pending: &mut BTreeMap<VarId, Update>,
    ) -> Result<LocId, LowerError> {
        let mut current = entry;
        for stmt in block {
            current = self.lower_stmt(stmt, current, pending)?;
        }
        Ok(current)
    }

    fn lower_stmt(
        &mut self,
        stmt: &Stmt,
        current: LocId,
        pending: &mut BTreeMap<VarId, Update>,
    ) -> Result<LocId, LowerError> {
        match stmt {
            Stmt::Skip => Ok(current),
            Stmt::Assign(name, value) => {
                let var = self.vars[name];
                if matches!(value, Expr::Nondet) {
                    pending.insert(var, Update::Nondet);
                    return Ok(current);
                }
                if value.has_nondet() {
                    return Err(LowerError::NondetInExpression(value.to_string()));
                }
                let raw = self.expr_to_polynomial(value)?;
                let composed = self.compose_with_pending(&raw, current, pending);
                let (poly, current) = composed?;
                pending.insert(var, Update::Assign(poly));
                Ok(current)
            }
            Stmt::Tick(amount) => {
                if amount.has_nondet() {
                    return Err(LowerError::NondetInExpression(amount.to_string()));
                }
                let cost = self.builder.cost_var();
                let raw = Polynomial::var(cost) + self.expr_to_polynomial(amount)?;
                let (poly, current) = self.compose_with_pending(&raw, current, pending)?;
                pending.insert(cost, Update::Assign(poly));
                Ok(current)
            }
            Stmt::Assume(cond) => {
                let current = self.flush(current, pending);
                let disjuncts = self.to_disjuncts(cond)?;
                let target = self.fresh_location("assume");
                match disjuncts {
                    None => {
                        // Non-deterministic assume: no restriction.
                        self.builder.transition(current, target).finish();
                    }
                    Some(ds) => {
                        for d in ds {
                            let mut t = self.builder.transition(current, target);
                            for g in d {
                                t = t.guard(g);
                            }
                            t.finish();
                        }
                    }
                }
                Ok(target)
            }
            Stmt::If(cond, then_block, else_block) => {
                let current = self.flush(current, pending);
                let join = self.fresh_location("join");
                let positive = self.to_disjuncts(cond)?;
                let negative = self.to_disjuncts(&cond.clone().negate())?;

                let then_entry = self.fresh_location("then");
                self.emit_branch(current, then_entry, &positive);
                let mut then_pending = BTreeMap::new();
                let then_exit = self.lower_block(then_block, then_entry, &mut then_pending)?;
                let then_exit = self.flush(then_exit, &mut then_pending);
                self.builder.transition(then_exit, join).finish();

                let else_entry = self.fresh_location("else");
                self.emit_branch(current, else_entry, &negative);
                let mut else_pending = BTreeMap::new();
                let else_exit = self.lower_block(else_block, else_entry, &mut else_pending)?;
                let else_exit = self.flush(else_exit, &mut else_pending);
                self.builder.transition(else_exit, join).finish();

                Ok(join)
            }
            Stmt::While(cond, invariants, body) => {
                let current = self.flush(current, pending);
                let head = self.fresh_location("while_head");
                self.builder.transition(current, head).finish();

                if !invariants.is_empty() {
                    let mut constraints = Vec::new();
                    for inv in invariants {
                        constraints.extend(self.conjunction_only(inv)?);
                    }
                    self.annotations.push((head, constraints));
                }

                let positive = self.to_disjuncts(cond)?;
                let negative = self.to_disjuncts(&cond.clone().negate())?;

                let body_entry = self.fresh_location("body");
                self.emit_branch(head, body_entry, &positive);
                let mut body_pending = BTreeMap::new();
                let body_exit = self.lower_block(body, body_entry, &mut body_pending)?;
                let body_exit = self.flush(body_exit, &mut body_pending);
                self.builder.transition(body_exit, head).finish();

                let exit = self.fresh_location("while_exit");
                self.emit_branch(head, exit, &negative);
                Ok(exit)
            }
        }
    }

    /// Emits one transition per disjunct (or a single unguarded transition for `*`).
    fn emit_branch(&mut self, from: LocId, to: LocId, disjuncts: &Option<Vec<Disjunct>>) {
        match disjuncts {
            None => self.builder.transition(from, to).finish(),
            Some(ds) => {
                for d in ds {
                    let mut t = self.builder.transition(from, to);
                    for g in d {
                        t = t.guard(g.clone());
                    }
                    t.finish();
                }
            }
        }
    }

    /// Sequentially composes an expression with the pending simultaneous update.
    ///
    /// If the expression reads a variable whose pending update is non-deterministic, the
    /// pending updates are flushed first (returning a new current location).
    fn compose_with_pending(
        &mut self,
        raw: &Polynomial,
        current: LocId,
        pending: &mut BTreeMap<VarId, Update>,
    ) -> Result<(Polynomial, LocId), LowerError> {
        let reads_havocked = raw.vars().iter().any(|v| {
            matches!(pending.get(v), Some(Update::Nondet))
        });
        let current = if reads_havocked { self.flush(current, pending) } else { current };
        let mut substitution: BTreeMap<VarId, Polynomial> = BTreeMap::new();
        for (&var, update) in pending.iter() {
            if let Update::Assign(p) = update {
                substitution.insert(var, p.clone());
            }
        }
        Ok((raw.substitute(&substitution), current))
    }

    fn expr_to_polynomial(&self, expr: &Expr) -> Result<Polynomial, LowerError> {
        match expr {
            Expr::Int(v) => Ok(Polynomial::from_int(*v)),
            Expr::Var(name) => Ok(Polynomial::var(self.vars[name])),
            Expr::Neg(inner) => Ok(-self.expr_to_polynomial(inner)?),
            Expr::Bin(op, a, b) => {
                let pa = self.expr_to_polynomial(a)?;
                let pb = self.expr_to_polynomial(b)?;
                Ok(match op {
                    BinOp::Add => pa + pb,
                    BinOp::Sub => pa - pb,
                    BinOp::Mul => pa * pb,
                })
            }
            Expr::Nondet => Err(LowerError::NondetInExpression(expr.to_string())),
        }
    }

    /// Converts a comparison into affine `expr ≥ 0` conjuncts (integer semantics for the
    /// strict comparisons).
    fn comparison_to_constraints(
        &self,
        lhs: &Expr,
        op: CmpOp,
        rhs: &Expr,
    ) -> Result<Vec<LinExpr>, LowerError> {
        let left = self.expr_to_polynomial(lhs)?;
        let right = self.expr_to_polynomial(rhs)?;
        let diff = &left - &right; // lhs - rhs
        let to_affine = |p: &Polynomial| -> Result<LinExpr, LowerError> {
            LinExpr::try_from_polynomial(p).ok_or_else(|| {
                LowerError::NonAffineCondition(format!("{lhs} {op} {rhs}"))
            })
        };
        let one = Polynomial::from_int(1);
        Ok(match op {
            CmpOp::Ge => vec![to_affine(&diff)?],
            CmpOp::Gt => vec![to_affine(&(&diff - &one))?],
            CmpOp::Le => vec![to_affine(&-&diff)?],
            CmpOp::Lt => vec![to_affine(&(&-&diff - &one))?],
            CmpOp::Eq => vec![to_affine(&diff)?, to_affine(&-&diff)?],
            CmpOp::Ne => {
                // Handled at the disjunct level; a bare `!=` as a conjunct is split there.
                // This path is only reached for Θ0/invariants where we reject it.
                return Err(LowerError::NonAffineCondition(format!(
                    "{lhs} != {rhs} requires disjunctive reasoning"
                )));
            }
        })
    }

    /// Converts a condition into disjunctive guard normal form.
    ///
    /// Returns `None` for the non-deterministic condition `*` (meaning "either way").
    fn to_disjuncts(&self, cond: &BoolExpr) -> Result<Option<Vec<Disjunct>>, LowerError> {
        if matches!(cond, BoolExpr::Nondet) {
            return Ok(None);
        }
        let nnf = Self::to_nnf(cond.clone(), false);
        if nnf == BoolExpr::Nondet {
            // The negation of `*` is `*` again: either way, no guard.
            return Ok(None);
        }
        if Self::mentions_nondet(&nnf) {
            return Err(LowerError::NestedNondetCondition(cond.to_string()));
        }
        let disjuncts = self.nnf_to_dnf(&nnf)?;
        Ok(Some(disjuncts))
    }

    fn mentions_nondet(cond: &BoolExpr) -> bool {
        match cond {
            BoolExpr::Nondet => true,
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                Self::mentions_nondet(a) || Self::mentions_nondet(b)
            }
            BoolExpr::Not(a) => Self::mentions_nondet(a),
            _ => false,
        }
    }

    /// Negation normal form with comparisons as literals; `negated` tracks parity.
    fn to_nnf(cond: BoolExpr, negated: bool) -> BoolExpr {
        match cond {
            BoolExpr::Not(inner) => Self::to_nnf(*inner, !negated),
            BoolExpr::And(a, b) => {
                let a = Self::to_nnf(*a, negated);
                let b = Self::to_nnf(*b, negated);
                if negated {
                    BoolExpr::or(a, b)
                } else {
                    BoolExpr::and(a, b)
                }
            }
            BoolExpr::Or(a, b) => {
                let a = Self::to_nnf(*a, negated);
                let b = Self::to_nnf(*b, negated);
                if negated {
                    BoolExpr::and(a, b)
                } else {
                    BoolExpr::or(a, b)
                }
            }
            BoolExpr::True => {
                if negated {
                    BoolExpr::False
                } else {
                    BoolExpr::True
                }
            }
            BoolExpr::False => {
                if negated {
                    BoolExpr::True
                } else {
                    BoolExpr::False
                }
            }
            BoolExpr::Nondet => BoolExpr::Nondet,
            BoolExpr::Cmp(a, op, b) => {
                if !negated {
                    BoolExpr::Cmp(a, op, b)
                } else {
                    let flipped = match op {
                        CmpOp::Lt => CmpOp::Ge,
                        CmpOp::Le => CmpOp::Gt,
                        CmpOp::Gt => CmpOp::Le,
                        CmpOp::Ge => CmpOp::Lt,
                        CmpOp::Eq => CmpOp::Ne,
                        CmpOp::Ne => CmpOp::Eq,
                    };
                    BoolExpr::Cmp(a, flipped, b)
                }
            }
        }
    }

    /// Distributes an NNF formula into a list of conjunctive disjuncts of affine guards.
    fn nnf_to_dnf(&self, cond: &BoolExpr) -> Result<Vec<Disjunct>, LowerError> {
        match cond {
            BoolExpr::True => Ok(vec![Vec::new()]),
            BoolExpr::False => Ok(vec![vec![LinExpr::from_int(-1)]]),
            BoolExpr::Cmp(a, CmpOp::Ne, b) => {
                // a != b becomes (a < b) or (a > b).
                let less = self.comparison_to_constraints(a, CmpOp::Lt, b)?;
                let greater = self.comparison_to_constraints(a, CmpOp::Gt, b)?;
                Ok(vec![less, greater])
            }
            BoolExpr::Cmp(a, op, b) => Ok(vec![self.comparison_to_constraints(a, *op, b)?]),
            BoolExpr::Or(x, y) => {
                let mut result = self.nnf_to_dnf(x)?;
                result.extend(self.nnf_to_dnf(y)?);
                Ok(result)
            }
            BoolExpr::And(x, y) => {
                let left = self.nnf_to_dnf(x)?;
                let right = self.nnf_to_dnf(y)?;
                let mut result = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        result.push(combined);
                    }
                }
                Ok(result)
            }
            BoolExpr::Not(_) => unreachable!("negations removed by NNF"),
            BoolExpr::Nondet => Err(LowerError::NestedNondetCondition(cond.to_string())),
        }
    }

    /// For Θ0 and invariant annotations: only conjunctions of affine comparisons.
    fn conjunction_only(&self, cond: &BoolExpr) -> Result<Vec<LinExpr>, LowerError> {
        let disjuncts = self
            .to_disjuncts(cond)?
            .ok_or_else(|| LowerError::DisjunctiveTheta0(cond.to_string()))?;
        match disjuncts.len() {
            1 => Ok(disjuncts.into_iter().next().unwrap()),
            _ => Err(LowerError::DisjunctiveTheta0(cond.to_string())),
        }
    }
}

#[allow(dead_code)]
fn rational(n: i64) -> Rational {
    Rational::from_int(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use dca_ir::{CostExplorer, FixedOracle, Interpreter, IntValuation, RunOutcome};

    fn compile(source: &str) -> LoweredProgram {
        lower_program(&parse_program(source).unwrap()).unwrap()
    }

    fn initial(ts: &TransitionSystem, assignments: &[(&str, i64)]) -> IntValuation {
        let mut vals = IntValuation::new();
        for v in ts.vars() {
            vals.insert(v, 0);
        }
        for (name, value) in assignments {
            vals.insert(ts.pool().lookup(name).unwrap(), *value);
        }
        vals
    }

    const JOIN_OLD: &str = r#"
        proc join_old(lenA, lenB) {
            assume(lenA >= 1 && lenA <= 100 && lenB >= 1 && lenB <= 100);
            i = 0;
            while (i < lenA) {
                j = 0;
                while (j < lenB) {
                    tick(1);
                    j = j + 1;
                }
                i = i + 1;
            }
        }
    "#;

    #[test]
    fn running_example_cost_matches_closed_form() {
        let lowered = compile(JOIN_OLD);
        let ts = &lowered.ts;
        let interp = Interpreter::default();
        for (len_a, len_b) in [(1i64, 1i64), (3, 4), (10, 7), (100, 100)] {
            let result = interp.run(
                ts,
                &initial(ts, &[("lenA", len_a), ("lenB", len_b)]),
                &mut FixedOracle(0),
            );
            assert_eq!(result.outcome, RunOutcome::Terminated);
            assert_eq!(result.cost, len_a * len_b, "cost of join_old({len_a},{len_b})");
        }
    }

    #[test]
    fn theta0_contains_input_bounds() {
        let lowered = compile(JOIN_OLD);
        let ts = &lowered.ts;
        let len_a = ts.pool().lookup("lenA").unwrap();
        // theta0 must entail lenA >= 1 (appears literally among the conjuncts).
        assert!(ts
            .theta0()
            .iter()
            .any(|c| c.coeff(len_a) == Rational::one()
                && *c.constant_term() == Rational::from_int(-1)));
        // cost = 0 is forced.
        let cost = ts.cost_var();
        assert!(ts.theta0().iter().any(|c| c.coeff(cost) == Rational::one()));
    }

    #[test]
    fn straight_line_statements_are_fused() {
        // Four assignments plus a tick collapse into a single transition.
        let lowered = compile(
            "proc f(n) { assume(n >= 0); x = n; y = x + 1; z = y * y; tick(z); }",
        );
        let ts = &lowered.ts;
        // entry -> step -> terminal: exactly 2 non-self-loop transitions.
        let non_loop = ts
            .transitions()
            .iter()
            .filter(|t| !(t.source == ts.terminal() && t.target == ts.terminal()))
            .count();
        assert_eq!(non_loop, 2, "{}", ts.render());
        // The fused update must give cost = (n+1)^2 via sequential composition.
        let interp = Interpreter::default();
        let result = interp.run(ts, &initial(ts, &[("n", 4)]), &mut FixedOracle(0));
        assert_eq!(result.cost, 25);
    }

    #[test]
    fn if_else_costs() {
        let source = r#"
            proc f(x) {
                assume(x >= 0 && x <= 10);
                if (x > 5) { tick(10); } else { tick(1); }
            }
        "#;
        let lowered = compile(source);
        let interp = Interpreter::default();
        let high = interp.run(&lowered.ts, &initial(&lowered.ts, &[("x", 9)]), &mut FixedOracle(0));
        let low = interp.run(&lowered.ts, &initial(&lowered.ts, &[("x", 2)]), &mut FixedOracle(0));
        assert_eq!(high.cost, 10);
        assert_eq!(low.cost, 1);
    }

    #[test]
    fn nondet_branch_explored_both_ways() {
        let source = r#"
            proc f(n) {
                assume(n >= 1 && n <= 5);
                i = 0;
                while (i < n) {
                    if (*) { tick(2); } else { tick(1); }
                    i = i + 1;
                }
            }
        "#;
        let lowered = compile(source);
        let explorer = CostExplorer::default();
        let bounds = explorer.explore(&lowered.ts, &initial(&lowered.ts, &[("n", 3)]));
        assert_eq!(bounds.min, 3);
        assert_eq!(bounds.max, 6);
    }

    #[test]
    fn nondet_assignment_lowered_to_havoc() {
        let source = "proc f(n) { x = nondet(); if (x >= 0) { tick(1); } }";
        let lowered = compile(source);
        assert!(lowered.ts.transitions().iter().any(|t| t.has_nondet()));
    }

    #[test]
    fn for_loop_sugar_costs() {
        let source = r#"
            proc f(n) {
                assume(n >= 1 && n <= 50);
                for (i = 0; i < n; i = i + 1) { tick(3); }
            }
        "#;
        let lowered = compile(source);
        let interp = Interpreter::default();
        let result = interp.run(&lowered.ts, &initial(&lowered.ts, &[("n", 7)]), &mut FixedOracle(0));
        assert_eq!(result.cost, 21);
    }

    #[test]
    fn invariant_annotations_are_collected() {
        let source = r#"
            proc f(n) {
                assume(n >= 1 && n <= 100);
                i = 0;
                while (i < n) invariant(i >= 0, i <= n) { tick(1); i = i + 1; }
            }
        "#;
        let lowered = compile(source);
        assert_eq!(lowered.annotations.len(), 1);
        let (loc, constraints) = &lowered.annotations[0];
        assert!(lowered.ts.location_name(*loc).contains("while_head"));
        assert_eq!(constraints.len(), 2);
    }

    #[test]
    fn disjunctive_guards_become_multiple_transitions() {
        let source = r#"
            proc f(x) {
                assume(x >= 0 && x <= 10);
                if (x < 2 || x > 8) { tick(1); }
            }
        "#;
        let lowered = compile(source);
        let interp = Interpreter::default();
        for (x, expected) in [(0i64, 1i64), (1, 1), (5, 0), (9, 1)] {
            let result =
                interp.run(&lowered.ts, &initial(&lowered.ts, &[("x", x)]), &mut FixedOracle(0));
            assert_eq!(result.outcome, RunOutcome::Terminated, "x = {x}");
            assert_eq!(result.cost, expected, "x = {x}");
        }
    }

    #[test]
    fn not_equal_condition_is_split() {
        let source = r#"
            proc f(x) {
                assume(x >= 0 && x <= 4);
                while (x != 2) { tick(1); x = x + 1; }
            }
        "#;
        let lowered = compile(source);
        let interp = Interpreter::default();
        let result = interp.run(&lowered.ts, &initial(&lowered.ts, &[("x", 0)]), &mut FixedOracle(0));
        assert_eq!(result.cost, 2);
        // Starting at 2 the loop exits immediately.
        let result = interp.run(&lowered.ts, &initial(&lowered.ts, &[("x", 2)]), &mut FixedOracle(0));
        assert_eq!(result.cost, 0);
    }

    #[test]
    fn negative_tick_allowed() {
        let source = r#"
            proc f(n) {
                assume(n >= 1 && n <= 10);
                tick(10);
                i = 0;
                while (i < n) { tick(-1); i = i + 1; }
            }
        "#;
        let lowered = compile(source);
        let interp = Interpreter::default();
        let result = interp.run(&lowered.ts, &initial(&lowered.ts, &[("n", 4)]), &mut FixedOracle(0));
        assert_eq!(result.cost, 6);
    }

    #[test]
    fn errors_are_reported() {
        let err = lower_program(&parse_program("proc f(n) { x = nondet() + 1; }").unwrap())
            .unwrap_err();
        assert!(matches!(err, LowerError::NondetInExpression(_)), "{err}");

        let err = lower_program(
            &parse_program("proc f(n) { assume(n >= 0); if (n * n > 4) { tick(1); } }").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, LowerError::NonAffineCondition(_)), "{err}");

        let err = lower_program(
            &parse_program("proc f(n) { assume(n >= 0 || n <= 10); tick(1); }").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, LowerError::DisjunctiveTheta0(_)), "{err}");

        let err = lower_program(
            &parse_program("proc f(n) { assume(n >= 0); if (* && n > 0) { tick(1); } }").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, LowerError::NestedNondetCondition(_)), "{err}");
    }

    #[test]
    fn mid_body_assume_restricts_paths() {
        let source = r#"
            proc f(x) {
                assume(x >= 0 && x <= 10);
                tick(1);
                assume(x >= 5);
                tick(1);
            }
        "#;
        let lowered = compile(source);
        let interp = Interpreter::default();
        // For x < 5 the mid-body assume blocks the run (stuck), which is the standard
        // semantics of assume-as-guard.
        let blocked = interp.run(&lowered.ts, &initial(&lowered.ts, &[("x", 1)]), &mut FixedOracle(0));
        assert_eq!(blocked.outcome, RunOutcome::Stuck);
        assert_eq!(blocked.cost, 1);
        let passes = interp.run(&lowered.ts, &initial(&lowered.ts, &[("x", 7)]), &mut FixedOracle(0));
        assert_eq!(passes.outcome, RunOutcome::Terminated);
        assert_eq!(passes.cost, 2);
    }
}
