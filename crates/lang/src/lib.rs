//! The `dca` imperative mini-language: lexer, parser, AST and lowering to transition
//! systems.
//!
//! The paper analyses numerical C functions that are translated to transition systems by
//! the (unavailable) C2fsm tool. This crate plays that role: it defines a small
//! imperative language covering exactly the constructs the paper's program model supports
//! — integer variables, polynomial assignments, non-deterministic assignment and
//! branching, `if`/`while`/`for`, `assume` for input preconditions, and `tick(e)` for
//! incurring cost — and lowers it to the [`dca_ir::TransitionSystem`] model of Section 3.
//!
//! # Syntax overview
//!
//! ```text
//! proc join(lenA, lenB) {
//!     assume(lenA >= 1 && lenA <= 100 && lenB >= 1 && lenB <= 100);
//!     i = 0;
//!     while (i < lenA) {
//!         j = 0;
//!         while (j < lenB) {
//!             tick(1);
//!             j = j + 1;
//!         }
//!         i = i + 1;
//!     }
//! }
//! ```
//!
//! * leading `assume(...)` statements define the initial condition `Θ0`;
//! * `tick(e)` adds `e` to the implicit `cost` variable (negative and symbolic amounts
//!   are allowed);
//! * `x = nondet();` is a non-deterministic (havoc) assignment, `if (*)` / `while (*)`
//!   are non-deterministic branches;
//! * `while (c) invariant(e1, e2, ...) { ... }` attaches user-supplied loop invariants
//!   that are conjoined with the automatically generated ones (the paper's `*`-marked
//!   benchmarks needed the same manual strengthening);
//! * `for (i = a; i < b; i = i + 1) { ... }` is sugar for the corresponding `while`.
//!
//! # Example
//!
//! ```
//! use dca_lang::parse_program;
//!
//! let source = r#"
//!     proc count(n) {
//!         assume(n >= 1 && n <= 100);
//!         i = 0;
//!         while (i < n) { tick(1); i = i + 1; }
//!     }
//! "#;
//! let program = parse_program(source).unwrap();
//! let lowered = dca_lang::lower_program(&program).unwrap();
//! assert_eq!(lowered.ts.name(), "count");
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{BinOp, Block, BoolExpr, CmpOp, Expr, Program, Stmt};

pub use lexer::{tokenize, LexError, Token, TokenKind};
pub use lower::{lower_program, LowerError, LoweredProgram};
pub use parser::{parse_program, ParseError};

/// Parses and lowers a program in one step.
///
/// # Errors
///
/// Returns a human-readable error string if parsing or lowering fails.
pub fn compile(source: &str) -> Result<LoweredProgram, String> {
    let program = parse_program(source).map_err(|e| e.to_string())?;
    lower_program(&program).map_err(|e| e.to_string())
}
