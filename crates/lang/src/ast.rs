//! Abstract syntax tree of the mini-language.

use std::fmt;

/// Arithmetic binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// Integer-valued expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Non-deterministic integer (`nondet()`); only allowed as a full assignment
    /// right-hand side.
    Nondet,
}

impl Expr {
    /// Convenience constructor for a variable expression.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Convenience constructor for an addition. These are plain AST builders, not
    /// arithmetic on `Expr` values, so the operator traits would be misleading.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs))
    }

    /// Returns `true` if the expression mentions `nondet()`.
    pub fn has_nondet(&self) -> bool {
        match self {
            Expr::Nondet => true,
            Expr::Int(_) | Expr::Var(_) => false,
            Expr::Neg(e) => e.has_nondet(),
            Expr::Bin(_, a, b) => a.has_nondet() || b.has_nondet(),
        }
    }

    /// All variables mentioned by the expression.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::Nondet => {}
            Expr::Var(name) => out.push(name.clone()),
            Expr::Neg(e) => e.vars(out),
            Expr::Bin(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Var(name) => write!(f, "{name}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Nondet => write!(f, "nondet()"),
        }
    }
}

/// Boolean conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// Comparison of two integer expressions.
    Cmp(Expr, CmpOp, Expr),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Literal true.
    True,
    /// Literal false.
    False,
    /// Non-deterministic condition `*`.
    Nondet,
}

impl BoolExpr {
    /// Convenience constructor for a comparison.
    pub fn cmp(lhs: Expr, op: CmpOp, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp(lhs, op, rhs)
    }

    /// Convenience constructor for a conjunction.
    pub fn and(lhs: BoolExpr, rhs: BoolExpr) -> BoolExpr {
        BoolExpr::And(Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a disjunction.
    pub fn or(lhs: BoolExpr, rhs: BoolExpr) -> BoolExpr {
        BoolExpr::Or(Box::new(lhs), Box::new(rhs))
    }

    /// Logical negation (push-down happens at lowering time).
    pub fn negate(self) -> BoolExpr {
        BoolExpr::Not(Box::new(self))
    }

    /// Returns `true` if the condition contains a non-deterministic choice.
    pub fn has_nondet(&self) -> bool {
        match self {
            BoolExpr::Nondet => true,
            BoolExpr::True | BoolExpr::False | BoolExpr::Cmp(..) => false,
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => a.has_nondet() || b.has_nondet(),
            BoolExpr::Not(a) => a.has_nondet(),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            BoolExpr::And(a, b) => write!(f, "({a} && {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} || {b})"),
            BoolExpr::Not(a) => write!(f, "!({a})"),
            BoolExpr::True => write!(f, "true"),
            BoolExpr::False => write!(f, "false"),
            BoolExpr::Nondet => write!(f, "*"),
        }
    }
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// Statements of the mini-language.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// No-op.
    Skip,
    /// Assignment `x = e;` (the right-hand side may be `nondet()`).
    Assign(String, Expr),
    /// `assume(c);` — a precondition when leading the procedure body, a path restriction
    /// otherwise.
    Assume(BoolExpr),
    /// `tick(e);` — incur cost `e`.
    Tick(Expr),
    /// `if (c) { .. } else { .. }` (the else-branch may be empty).
    If(BoolExpr, Block, Block),
    /// `while (c) invariant(e, ..) { .. }`; the invariant annotations are affine
    /// conditions trusted by the invariant generator.
    While(BoolExpr, Vec<BoolExpr>, Block),
}

/// A procedure: name, parameter list and body.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Procedure name.
    pub name: String,
    /// Parameter names (the analysis inputs).
    pub params: Vec<String>,
    /// Procedure body.
    pub body: Block,
}

impl Program {
    /// Collects every variable name used in the program (parameters and locals).
    pub fn all_variables(&self) -> Vec<String> {
        let mut names = self.params.clone();
        fn visit_block(block: &Block, names: &mut Vec<String>) {
            for stmt in block {
                visit_stmt(stmt, names);
            }
        }
        fn visit_bool(b: &BoolExpr, names: &mut Vec<String>) {
            match b {
                BoolExpr::Cmp(a, _, c) => {
                    a.vars(names);
                    c.vars(names);
                }
                BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                    visit_bool(a, names);
                    visit_bool(b, names);
                }
                BoolExpr::Not(a) => visit_bool(a, names),
                BoolExpr::True | BoolExpr::False | BoolExpr::Nondet => {}
            }
        }
        fn visit_stmt(stmt: &Stmt, names: &mut Vec<String>) {
            match stmt {
                Stmt::Skip => {}
                Stmt::Assign(name, e) => {
                    names.push(name.clone());
                    e.vars(names);
                }
                Stmt::Assume(c) => visit_bool(c, names),
                Stmt::Tick(e) => e.vars(names),
                Stmt::If(c, then_block, else_block) => {
                    visit_bool(c, names);
                    visit_block(then_block, names);
                    visit_block(else_block, names);
                }
                Stmt::While(c, invs, body) => {
                    visit_bool(c, names);
                    for inv in invs {
                        visit_bool(inv, names);
                    }
                    visit_block(body, names);
                }
            }
        }
        visit_block(&self.body, &mut names);
        names.sort();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_and_vars() {
        let e = Expr::add(Expr::var("x"), Expr::mul(Expr::Int(2), Expr::var("y")));
        assert_eq!(e.to_string(), "(x + (2 * y))");
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec!["x".to_string(), "y".to_string()]);
        assert!(!e.has_nondet());
        assert!(Expr::Nondet.has_nondet());
        assert!(Expr::Neg(Box::new(Expr::Nondet)).has_nondet());
    }

    #[test]
    fn bool_display() {
        let c = BoolExpr::and(
            BoolExpr::cmp(Expr::var("x"), CmpOp::Lt, Expr::Int(5)),
            BoolExpr::cmp(Expr::var("y"), CmpOp::Ge, Expr::Int(0)),
        );
        assert_eq!(c.to_string(), "(x < 5 && y >= 0)");
        assert!(!c.has_nondet());
        assert!(BoolExpr::Nondet.has_nondet());
        assert!(BoolExpr::or(BoolExpr::True, BoolExpr::Nondet).has_nondet());
    }

    #[test]
    fn all_variables_collects_params_and_locals() {
        let program = Program {
            name: "p".into(),
            params: vec!["n".into()],
            body: vec![
                Stmt::Assign("i".into(), Expr::Int(0)),
                Stmt::While(
                    BoolExpr::cmp(Expr::var("i"), CmpOp::Lt, Expr::var("n")),
                    vec![],
                    vec![
                        Stmt::Tick(Expr::Int(1)),
                        Stmt::Assign("i".into(), Expr::add(Expr::var("i"), Expr::Int(1))),
                    ],
                ),
            ],
        };
        assert_eq!(program.all_variables(), vec!["i".to_string(), "n".to_string()]);
    }
}
