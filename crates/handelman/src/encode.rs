//! Product enumeration and translation of implication constraints into linear equalities.

use dca_numeric::Rational;
use dca_poly::{LinExpr, LinForm, Monomial, Polynomial, TemplatePolynomial, UnknownId};

use crate::factory::{UnknownFactory, UnknownKind};

/// Sense of a linear constraint over LP unknowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `form = 0`
    Eq,
    /// `form ≥ 0`
    Ge,
}

/// A linear constraint `form (= | ≥) 0` over LP unknowns.
#[derive(Debug, Clone, PartialEq)]
pub struct UnknownConstraint {
    /// The affine form over unknowns.
    pub form: LinForm,
    /// Equality or inequality.
    pub sense: ConstraintSense,
    /// Human-readable origin, used in diagnostics.
    pub origin: String,
}

impl UnknownConstraint {
    /// Creates an equality constraint `form = 0`.
    pub fn eq(form: LinForm, origin: impl Into<String>) -> UnknownConstraint {
        UnknownConstraint { form, sense: ConstraintSense::Eq, origin: origin.into() }
    }

    /// Creates an inequality constraint `form ≥ 0`.
    pub fn ge(form: LinForm, origin: impl Into<String>) -> UnknownConstraint {
        UnknownConstraint { form, sense: ConstraintSense::Ge, origin: origin.into() }
    }
}

/// The result of encoding one implication constraint.
#[derive(Debug, Clone)]
pub struct HandelmanEncoding {
    /// Linear constraints over unknowns (coefficient-matching equalities).
    pub constraints: Vec<UnknownConstraint>,
    /// The multiplier unknowns `c_g` introduced for this constraint (all non-negative).
    pub multipliers: Vec<UnknownId>,
    /// The products `g ∈ Prod_K(Aff)` in the same order as `multipliers`.
    pub products: Vec<Polynomial>,
}

impl HandelmanEncoding {
    /// Multiplier unknowns whose product has degree ≥ 2 — the candidates a lazy
    /// row-generation LP solve may defer. Degree-≤-1 products (the constant `1`
    /// and the premise expressions themselves) form the always-active core: they
    /// are few, they anchor feasibility, and the stable graded product order
    /// guarantees they occupy a prefix of `multipliers`, so the lazy set is
    /// always a suffix per origin.
    pub fn lazy_multipliers(&self) -> Vec<UnknownId> {
        self.products
            .iter()
            .zip(&self.multipliers)
            .filter(|(product, _)| product.degree() >= 2)
            .map(|(_, &multiplier)| multiplier)
            .collect()
    }
}

/// Enumerates `Prod_K(Aff)`: all products of at most `max_factors` expressions from
/// `aff` (with repetition), including the empty product `1`.
///
/// # Examples
///
/// ```
/// use dca_handelman::products_up_to;
/// use dca_poly::{LinExpr, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.intern("x");
/// let aff = vec![LinExpr::var(x), LinExpr::from_int(10) - LinExpr::var(x)];
/// // 1, x, 10-x, x^2, x(10-x), (10-x)^2
/// assert_eq!(products_up_to(&aff, 2).len(), 6);
/// ```
pub fn products_up_to(aff: &[LinExpr], max_factors: u32) -> Vec<Polynomial> {
    let base: Vec<Polynomial> = aff.iter().map(LinExpr::to_polynomial).collect();
    let mut result = vec![Polynomial::one()];
    // Enumerate multisets of indices of size 1..=max_factors.
    fn recurse(
        base: &[Polynomial],
        start: usize,
        remaining: u32,
        current: &Polynomial,
        out: &mut Vec<Polynomial>,
    ) {
        if remaining == 0 {
            return;
        }
        for idx in start..base.len() {
            let next = current * &base[idx];
            out.push(next.clone());
            recurse(base, idx, remaining - 1, &next, out);
        }
    }
    recurse(&base, 0, max_factors, &Polynomial::one(), &mut result);
    // Deduplicate identical products globally (they arise whenever `aff` repeats an
    // expression, or two different factor multisets multiply out to the same
    // polynomial); each duplicate would add a redundant multiplier column to the LP.
    // Hash-set based: the degree-3 encodings enumerate thousands of products, and a
    // quadratic scan over full polynomial comparisons would burn seconds of the very
    // LP budget the dedup is meant to save.
    let mut seen: std::collections::HashSet<Polynomial> =
        std::collections::HashSet::with_capacity(result.len());
    result.retain(|product| seen.insert(product.clone()));
    // Stable graded order: products of lower degree first, ties broken by the term
    // list. Two consequences the LP layer relies on: (1) the emitted multiplier
    // columns — and hence their `lambda[origin#i]` names — are deterministic for a
    // given `aff` set, and (2) raising `max_factors` only *appends* products, so the
    // shared columns of consecutive escalation-ladder rungs keep their names and a
    // previous rung's basis remains a valid warm start (see `dca_core::escalate`).
    result.sort_by(compare_polynomials);
    result
}

/// Graded comparison of polynomials: by total degree, then term-by-term on the sorted
/// `(monomial, coefficient)` lists. Used to give `Prod_K(Aff)` a stable order.
fn compare_polynomials(a: &Polynomial, b: &Polynomial) -> std::cmp::Ordering {
    a.degree()
        .cmp(&b.degree())
        .then_with(|| {
            let mut left = a.iter();
            let mut right = b.iter();
            loop {
                match (left.next(), right.next()) {
                    (None, None) => return std::cmp::Ordering::Equal,
                    (None, Some(_)) => return std::cmp::Ordering::Less,
                    (Some(_), None) => return std::cmp::Ordering::Greater,
                    (Some((ma, ca)), Some((mb, cb))) => {
                        let ord = ma.cmp(mb).then_with(|| ca.cmp(cb));
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                }
            }
        })
}

/// Encodes the implication `(∀x. aff_i(x) ≥ 0 for all i) ⟹ poly(x) ≥ 0` as linear
/// equalities over unknowns, introducing one fresh non-negative multiplier per product in
/// `Prod_K(aff)`.
///
/// `poly` is a [`TemplatePolynomial`]: its coefficients are affine in the existing LP
/// unknowns, so the coefficient-matching equalities are linear in (existing unknowns ∪
/// fresh multipliers).
///
/// The `origin` string is attached to every generated constraint for diagnostics.
pub fn encode_nonnegativity(
    aff: &[LinExpr],
    poly: &TemplatePolynomial,
    max_factors: u32,
    factory: &mut UnknownFactory,
    origin: &str,
) -> HandelmanEncoding {
    let products = products_up_to(aff, max_factors);
    let multipliers: Vec<UnknownId> = (0..products.len())
        .map(|i| factory.fresh(&format!("lambda[{origin}#{i}]"), UnknownKind::NonNegative))
        .collect();

    // Right-hand side Σ c_g · g as a template polynomial over the fresh multipliers.
    let mut rhs = TemplatePolynomial::zero();
    for (product, &multiplier) in products.iter().zip(&multipliers) {
        for (mono, coeff) in product.iter() {
            let mut form = LinForm::zero();
            form.add_unknown(multiplier, coeff.clone());
            rhs.add_term(mono.clone(), form);
        }
    }

    // Coefficient matching: for every monomial appearing on either side, lhs - rhs = 0.
    let mut monomials: Vec<Monomial> = poly.monomials();
    monomials.extend(rhs.monomials());
    monomials.sort();
    monomials.dedup();

    let constraints = monomials
        .iter()
        .map(|mono| {
            let difference = &poly.coeff(mono) - &rhs.coeff(mono);
            UnknownConstraint::eq(difference, format!("{origin}: coeff of {mono:?}"))
        })
        .collect();

    HandelmanEncoding { constraints, multipliers, products }
}

/// Checks a concrete Handelman certificate by evaluation: verifies that
/// `poly_inst = Σ c_g · g` holds as a polynomial identity, where `poly_inst` is the
/// template instantiated with the given assignment. Used by tests.
pub fn check_certificate(
    poly: &TemplatePolynomial,
    products: &[Polynomial],
    multipliers: &[UnknownId],
    assignment: &std::collections::BTreeMap<UnknownId, Rational>,
) -> bool {
    let lhs = poly.instantiate(assignment);
    let mut rhs = Polynomial::zero();
    for (product, multiplier) in products.iter().zip(multipliers) {
        let value = assignment.get(multiplier).cloned().unwrap_or_default();
        if value.is_negative() {
            return false;
        }
        rhs += &product.scale(&value);
    }
    lhs == rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use dca_poly::{monomials_up_to_degree, VarPool};

    fn setup() -> (VarPool, dca_poly::VarId) {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        (pool, x)
    }

    #[test]
    fn product_enumeration_counts() {
        let (_, x) = setup();
        let aff = vec![LinExpr::var(x), LinExpr::from_int(10) - LinExpr::var(x)];
        assert_eq!(products_up_to(&aff, 0).len(), 1); // just 1
        assert_eq!(products_up_to(&aff, 1).len(), 3); // 1, a, b
        assert_eq!(products_up_to(&aff, 2).len(), 6); // + a^2, ab, b^2
        assert_eq!(products_up_to(&aff, 3).len(), 10); // + a^3, a^2 b, a b^2, b^3
        assert_eq!(products_up_to(&[], 3), vec![Polynomial::one()]);
    }

    #[test]
    fn products_are_nonneg_on_region() {
        // On the region {x >= 0, 10 - x >= 0} every product must be >= 0.
        let (_, x) = setup();
        let aff = vec![LinExpr::var(x), LinExpr::from_int(10) - LinExpr::var(x)];
        let products = products_up_to(&aff, 3);
        for value in 0..=10i64 {
            let mut valuation = dca_poly::Valuation::new();
            valuation.insert(x, Rational::from_int(value));
            for p in &products {
                assert!(!p.eval(&valuation).is_negative(), "product negative at {value}");
            }
        }
    }

    /// Encode the known-valid fact `x ≥ 0 ∧ 10 − x ≥ 0 ⟹ 10x − x² ≥ 0` and check that
    /// the emitted LP constraints admit the obvious certificate `10x − x² = x·(10−x)`.
    #[test]
    fn encoding_admits_manual_certificate() {
        let (_, x) = setup();
        let aff = vec![LinExpr::var(x), LinExpr::from_int(10) - LinExpr::var(x)];
        // poly = 10x - x^2 as a template polynomial with constant coefficients.
        let target = Polynomial::var(x).scale(&Rational::from_int(10))
            - Polynomial::var(x) * Polynomial::var(x);
        let poly = TemplatePolynomial::from_polynomial(&target);
        let mut factory = UnknownFactory::new();
        let encoding = encode_nonnegativity(&aff, &poly, 2, &mut factory, "test");
        assert_eq!(encoding.multipliers.len(), 6);
        // Build the assignment: multiplier of the product x*(10-x) is 1, everything else 0.
        let witness_product = LinExpr::var(x).to_polynomial()
            * (LinExpr::from_int(10) - LinExpr::var(x)).to_polynomial();
        let mut assignment = BTreeMap::new();
        for (product, &multiplier) in encoding.products.iter().zip(&encoding.multipliers) {
            let value = if *product == witness_product {
                Rational::one()
            } else {
                Rational::zero()
            };
            assignment.insert(multiplier, value);
        }
        // The certificate must satisfy every emitted equality.
        for constraint in &encoding.constraints {
            assert_eq!(constraint.sense, ConstraintSense::Eq);
            assert!(
                constraint.form.eval(&assignment).is_zero(),
                "constraint violated: {}",
                constraint.origin
            );
        }
        assert!(check_certificate(
            &poly,
            &encoding.products,
            &encoding.multipliers,
            &assignment
        ));
    }

    #[test]
    fn encoding_with_template_unknowns_stays_linear() {
        // poly = u0 + u1*x with unknown coefficients; the encoding must mention u0, u1 and
        // the multipliers linearly (LinForm by construction), and produce one equality per
        // monomial of degree <= 1 plus any extra monomials from the products.
        let (_, x) = setup();
        let aff = vec![LinExpr::var(x), LinExpr::from_int(5) - LinExpr::var(x)];
        let mut factory = UnknownFactory::new();
        let u0 = factory.fresh("u0", UnknownKind::Free);
        let u1 = factory.fresh("u1", UnknownKind::Free);
        let monos = monomials_up_to_degree(&[x], 1);
        let poly = TemplatePolynomial::from_template(&monos, &[u0, u1]);
        let encoding = encode_nonnegativity(&aff, &poly, 2, &mut factory, "tmpl");
        // Monomials on the RHS go up to degree 2, so we expect 3 coefficient equalities.
        assert_eq!(encoding.constraints.len(), 3);
        let all_unknowns: Vec<UnknownId> = encoding
            .constraints
            .iter()
            .flat_map(|c| c.form.unknowns())
            .collect();
        assert!(all_unknowns.contains(&u0));
        assert!(all_unknowns.contains(&u1));
    }

    #[test]
    fn certificate_rejects_negative_multiplier() {
        let (_, x) = setup();
        let poly = TemplatePolynomial::from_polynomial(&Polynomial::var(x));
        let products = vec![Polynomial::var(x)];
        let mut factory = UnknownFactory::new();
        let c = factory.fresh("c", UnknownKind::NonNegative);
        let mut assignment = BTreeMap::new();
        assignment.insert(c, Rational::from_int(-1));
        assert!(!check_certificate(&poly, &products, &[c], &assignment));
    }
}
