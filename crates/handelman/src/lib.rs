//! Handelman-style positivity certificates (Step 3 of the paper's algorithm).
//!
//! Every constraint collected in Step 2 has the shape
//!
//! ```text
//! aff_1(x) ≥ 0 ∧ ... ∧ aff_k(x) ≥ 0   ⟹   poly(x) ≥ 0
//! ```
//!
//! where the `aff_i` are concrete affine expressions (invariants, guards, Θ0) and `poly`
//! is a polynomial that is *linear in the LP unknowns* (template coefficients, the
//! threshold, ...). Following Handelman's theorem, the implication is soundly replaced by
//! the requirement that `poly` be a non-negative linear combination of products of at
//! most `K` of the `aff_i`:
//!
//! ```text
//! poly  =  Σ_{g ∈ Prod_K(Aff)} c_g · g        with  c_g ≥ 0.
//! ```
//!
//! Equating the coefficient of every monomial on both sides yields purely existential
//! *linear* equalities over the unknowns — exactly what the LP solver consumes.
//!
//! The crate provides the product enumeration ([`products_up_to`]), the unknown
//! allocator shared with the rest of the pipeline ([`UnknownFactory`]), and the encoder
//! ([`encode_nonnegativity`]) that emits the linear constraints.

mod encode;
mod factory;

pub use encode::{
    check_certificate, encode_nonnegativity, products_up_to, ConstraintSense, HandelmanEncoding,
    UnknownConstraint,
};
pub use factory::{UnknownFactory, UnknownKind};
