//! Allocation of LP unknowns shared across the constraint-generation pipeline.

use dca_poly::UnknownId;

/// Sign restriction of an LP unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownKind {
    /// Unrestricted in sign (template coefficients, the threshold `t`).
    Free,
    /// Constrained to be non-negative (Handelman multipliers).
    NonNegative,
}

/// Allocates [`UnknownId`]s with names and sign restrictions.
///
/// The factory is the single source of truth for how many unknowns exist; the core
/// solver turns every allocated unknown into one LP variable of the matching kind.
///
/// # Examples
///
/// ```
/// use dca_handelman::{UnknownFactory, UnknownKind};
/// let mut factory = UnknownFactory::new();
/// let t = factory.fresh("t", UnknownKind::Free);
/// let c = factory.fresh("lambda", UnknownKind::NonNegative);
/// assert_ne!(t, c);
/// assert_eq!(factory.len(), 2);
/// assert_eq!(factory.kind(c), UnknownKind::NonNegative);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UnknownFactory {
    names: Vec<String>,
    kinds: Vec<UnknownKind>,
}

impl UnknownFactory {
    /// Creates an empty factory.
    pub fn new() -> UnknownFactory {
        UnknownFactory::default()
    }

    /// Allocates a fresh unknown.
    pub fn fresh(&mut self, name: &str, kind: UnknownKind) -> UnknownId {
        let id = UnknownId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.kinds.push(kind);
        id
    }

    /// Number of allocated unknowns.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no unknowns have been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The display name of an unknown.
    pub fn name(&self, id: UnknownId) -> &str {
        &self.names[id.index()]
    }

    /// The sign restriction of an unknown.
    pub fn kind(&self, id: UnknownId) -> UnknownKind {
        self.kinds[id.index()]
    }

    /// Iterates over all allocated unknowns.
    pub fn iter(&self) -> impl Iterator<Item = UnknownId> + '_ {
        (0..self.names.len() as u32).map(UnknownId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_sequential() {
        let mut f = UnknownFactory::new();
        assert!(f.is_empty());
        let a = f.fresh("a", UnknownKind::Free);
        let b = f.fresh("b", UnknownKind::NonNegative);
        assert_eq!(a, UnknownId(0));
        assert_eq!(b, UnknownId(1));
        assert_eq!(f.name(a), "a");
        assert_eq!(f.kind(a), UnknownKind::Free);
        assert_eq!(f.kind(b), UnknownKind::NonNegative);
        assert_eq!(f.iter().count(), 2);
    }
}
