//! # diffcost
//!
//! A reproduction of *“Differential Cost Analysis with Simultaneous Potentials and
//! Anti-potentials”* (Žikelić, Chang, Bolignano, Raimondi — PLDI 2022).
//!
//! Given two program versions over the same inputs, the analysis synthesizes — in a
//! single linear program — a polynomial *potential function* bounding the new version's
//! cost from above, an *anti-potential function* bounding the old version's cost from
//! below, and a minimized *threshold* `t` proving
//! `cost_new − cost_old ≤ t` for every input.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`lang`] — the imperative mini-language frontend (`assume`, `tick`, `nondet`, loops),
//! * [`ir`] — the transition-system program model, interpreter and cost explorer,
//! * [`invariants`] — affine invariant generation (polyhedra-lite abstract interpretation),
//! * [`lp`] — the two-phase simplex solver (`f64` and exact rational backends),
//! * [`handelman`] — Handelman-certificate constraint encoding,
//! * [`core`] — the DiffCost solver itself (thresholds, symbolic bounds, refutation,
//!   single-program precision, witness verification),
//! * [`benchmarks`] — the 19 Table-1 program pairs and the Fig. 1 running example,
//! * [`poly`] / [`numeric`] — polynomial and exact arithmetic substrates.
//!
//! # Quick start
//!
//! ```
//! use diffcost::prelude::*;
//!
//! let old = AnalyzedProgram::from_source(
//!     "proc f(n) { assume(n >= 1 && n <= 100); i = 0; while (i < n) { tick(1); i = i + 1; } }",
//! ).unwrap();
//! let new = AnalyzedProgram::from_source(
//!     "proc f(n) { assume(n >= 1 && n <= 100); i = 0; while (i < n) { tick(2); i = i + 1; } }",
//! ).unwrap();
//! let result = DiffCostSolver::default().solve(&new, &old).unwrap();
//! assert_eq!(result.threshold_int(), 100);
//! ```

pub use dca_benchmarks as benchmarks;
pub use dca_core as core;
pub use dca_handelman as handelman;
pub use dca_invariants as invariants;
pub use dca_ir as ir;
pub use dca_lang as lang;
pub use dca_lp as lp;
pub use dca_numeric as numeric;
pub use dca_poly as poly;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use dca_core::{
        AnalysisError, AnalysisOptions, AnalyzedProgram, DiffCostResult, DiffCostSolver,
        InvariantTier, PotentialFunction,
    };
    pub use dca_lang::{compile, parse_program};
    pub use dca_numeric::Rational;
}
